//! The poll-able, resumable process core (DESIGN.md §11).
//!
//! [`ProcessActor`] is the per-process half of the runtime: the paper's
//! logical left/right threads ([`RtThread`]), the protocol core
//! ([`ProcessCore`]), the reliable transport endpoint, checkpointing,
//! rollback, and telemetry — everything *except* the event loop. It never
//! blocks: every external stimulus arrives as one [`Wire`] item through
//! [`ProcessActor::on_wire`], which runs the internal ready queue to
//! quiescence and returns. That makes a process a coroutine in all but
//! name, so an executor can host it however it likes:
//!
//! - the **threaded** executor gives each actor an OS thread that blocks
//!   on a dedicated inbox channel (the original runtime shape);
//! - the **sharded** executor multiplexes many actors over a fixed worker
//!   pool, feeding each one batches drained from a per-shard inbox
//!   ([`crate::executor`]).
//!
//! Because an actor is owned by exactly one executor thread at a time and
//! all of its state transitions happen inside `on_wire`, per-owner
//! telemetry event order is identical under both executors.

use crate::net::{Delayer, FlushClass, Mailbox, Payload, Transport, Wire};
use crate::runtime::{RtConfig, RtStats};
use crossbeam::channel::Sender;
use opcsp_core::{
    ArrivalVerdict, CallId, Control, DataKind, Envelope, GuessId, JoinDecision, MsgId,
    ProcessCore, ProcessId, Telemetry, TelemetryEvent, Value,
};
use opcsp_sim::{Behavior, BehaviorState, Effect, Observable, Resume};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Reports flowing from executors back to the coordinating `RtWorld::run`.
#[derive(Debug, PartialEq)]
pub(crate) enum Report {
    ClientDone(ProcessId),
    /// Answer to a `Wire::Probe`: the actor's transport counters at probe
    /// time — (messages originated, messages released, frames unacked).
    Quiet {
        pid: ProcessId,
        round: u64,
        sent: u64,
        delivered: u64,
        unacked: u64,
    },
    /// A sharded-executor actor panicked; the worker caught the unwind,
    /// removed the actor, and carries on with the rest of its shard. (The
    /// threaded executor reports panics through `JoinHandle::join`.)
    Panicked { pid: ProcessId, msg: String },
    Final(Box<FinalReport>),
}

#[derive(Debug, PartialEq)]
pub(crate) struct FinalReport {
    pub pid: ProcessId,
    pub stats: RtStats,
    pub log: Vec<Observable>,
    pub external: Vec<Value>,
    pub events: Vec<TelemetryEvent>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    BlockedRecv,
    BlockedCall(CallId),
    AwaitingJoin,
    Done,
}

#[derive(Clone)]
struct Checkpoint {
    state: BehaviorState,
    status: Status,
    consumed_len: usize,
    oblog_len: usize,
    out_buf_len: usize,
    call_stack: Vec<(ProcessId, CallId, opcsp_core::Label)>,
    fork_guess: Option<GuessId>,
    /// Behavior steps the thread had executed at this boundary, for
    /// wasted-work telemetry on rollback.
    steps_len: u64,
}

struct RtThread {
    state: BehaviorState,
    status: Status,
    checkpoints: Vec<Checkpoint>,
    consumed: Vec<(u32, Envelope)>,
    oblog: Vec<Observable>,
    out_buf: Vec<Value>,
    call_stack: Vec<(ProcessId, CallId, opcsp_core::Label)>,
    fork_guess: Option<GuessId>,
    /// Behavior steps executed by this thread (monotone except for
    /// rollback truncation).
    steps: u64,
}

impl RtThread {
    fn new(state: BehaviorState) -> Self {
        let chk = Checkpoint {
            state: state.clone(),
            status: Status::Ready,
            consumed_len: 0,
            oblog_len: 0,
            out_buf_len: 0,
            call_stack: Vec::new(),
            fork_guess: None,
            steps_len: 0,
        };
        RtThread {
            state,
            status: Status::Ready,
            checkpoints: vec![chk],
            consumed: Vec::new(),
            oblog: Vec::new(),
            out_buf: Vec::new(),
            call_stack: Vec::new(),
            fork_guess: None,
            steps: 0,
        }
    }
}

/// One CSP process as a poll-able core: feed it [`Wire`] items, it runs
/// its logical threads to quiescence and sends protocol traffic through
/// its transport. Owned by exactly one executor thread at any time.
pub(crate) struct ProcessActor {
    pid: ProcessId,
    behavior: Arc<dyn Behavior>,
    cfg: Arc<RtConfig>,
    /// Reliable-delivery endpoint: all data/control traffic goes through
    /// it (and through the chaos layer underneath).
    transport: Transport,
    /// Our own inbox address, for self-addressed timers and ticks.
    self_mailbox: Mailbox,
    delayer: Arc<Delayer<Wire>>,
    report: Sender<Report>,
    core: ProcessCore,
    threads: BTreeMap<u32, RtThread>,
    pool: Vec<Envelope>,
    /// (thread, resume) work items to run, in FIFO order (preserves the
    /// program's send order across fork chains).
    ready: VecDeque<(u32, Resume)>,
    stats: RtStats,
    guesses: BTreeMap<GuessId, Vec<(String, Value)>>,
    external: Vec<Value>,
    done_reported: bool,
    is_client: bool,
    /// Targeted dissemination dedup (kind, guess).
    relayed: std::collections::BTreeSet<(u8, GuessId)>,
    /// Lifecycle event sink (`core::telemetry`); disabled unless
    /// [`RtConfig::telemetry`] is set.
    tele: Telemetry,
    /// Shared run epoch: telemetry timestamps are µs since this instant.
    start: Instant,
    /// Whether this actor self-schedules its transport ticks through the
    /// delayer (threaded executor). The sharded executor drives ticks from
    /// the worker loop instead — 10k actors each bouncing a timer off the
    /// delayer every few ms would melt it.
    self_ticks: bool,
    msg_ids: Arc<AtomicU64>,
    call_ids: Arc<AtomicU64>,
}

/// Everything an executor needs to build an actor; the actor itself is
/// constructed lazily *inside* the owning executor thread, so huge worlds
/// don't pay an O(N) construction spike on the coordinator.
pub(crate) struct ActorSpec {
    pub pid: ProcessId,
    pub behavior: Arc<dyn Behavior>,
    pub is_client: bool,
    pub cfg: Arc<RtConfig>,
    pub net: Arc<Vec<Mailbox>>,
    pub delayer: Arc<Delayer<Wire>>,
    pub report: Sender<Report>,
    pub start: Instant,
    pub msg_ids: Arc<AtomicU64>,
    pub call_ids: Arc<AtomicU64>,
    pub self_ticks: bool,
}

impl ProcessActor {
    pub fn new(spec: ActorSpec) -> ProcessActor {
        let ActorSpec {
            pid,
            behavior,
            is_client,
            cfg,
            net,
            delayer,
            report,
            start,
            msg_ids,
            call_ids,
            self_ticks,
        } = spec;
        ProcessActor {
            pid,
            behavior,
            transport: Transport::new(
                pid,
                cfg.faults.clone(),
                cfg.latency,
                start,
                delayer.clone(),
                net.clone(),
            ),
            self_mailbox: net[pid.0 as usize].clone(),
            delayer,
            report,
            core: ProcessCore::new(pid, cfg.core.clone()),
            threads: BTreeMap::new(),
            pool: Vec::new(),
            ready: VecDeque::new(),
            stats: RtStats::default(),
            guesses: BTreeMap::new(),
            external: Vec::new(),
            done_reported: false,
            is_client,
            relayed: std::collections::BTreeSet::new(),
            tele: Telemetry::new(cfg.telemetry),
            start,
            self_ticks,
            msg_ids,
            call_ids,
            cfg,
        }
    }

    /// Kick off the program: run thread 0 from `Resume::Start` to its
    /// first blocking point, and arm the transport tick (threaded mode).
    pub fn start(&mut self) {
        self.threads.insert(0, RtThread::new(self.behavior.init()));
        self.ready.push_back((0, Resume::Start));
        self.pump();
        if self.self_ticks {
            self.schedule_tick();
        }
        self.maybe_report_done();
    }

    /// Handle one wire item and run to quiescence. `Wire::Shutdown` is the
    /// executor's business and must not reach here.
    pub fn on_wire(&mut self, w: Wire) {
        match w {
            Wire::Frame(f) => {
                for p in self.transport.on_frame(f) {
                    match p {
                        Payload::Data(env) => self.on_data(env),
                        Payload::Ctrl(ctrl) => self.on_ctrl(ctrl),
                    }
                }
            }
            Wire::Timer(g) => self.on_timer(g),
            Wire::Tick => {
                self.transport.tick();
                if self.self_ticks {
                    self.schedule_tick();
                }
            }
            Wire::Probe(round) => {
                // Retransmit anything overdue and flush owed acks so
                // the drain converges quickly, then report.
                self.transport.tick();
                let (sent, delivered, unacked) = self.transport.quiet_probe();
                let _ = self.report.send(Report::Quiet {
                    pid: self.pid,
                    round,
                    sent,
                    delivered,
                    unacked,
                });
            }
            Wire::Shutdown => unreachable!("executors intercept Shutdown"),
        }
        self.pump();
        self.maybe_report_done();
    }

    /// Sharded-executor tick round: run transport maintenance directly
    /// (no delayer round trip). Call only when [`Self::wants_tick`].
    pub fn tick_round(&mut self) {
        self.transport.tick();
    }

    pub fn wants_tick(&self) -> bool {
        self.transport.needs_tick()
    }

    /// Emit the final report and consume the actor (on `Wire::Shutdown`).
    pub fn finalize(mut self) {
        let log: Vec<Observable> = self
            .threads
            .values()
            .flat_map(|t| t.oblog.iter().cloned())
            .collect();
        self.stats.wire.merge(self.core.wire_stats());
        self.stats.interner.merge(self.core.interner_full_stats());
        self.stats.absorb_net(self.transport.stats);
        self.sync_tele();
        let _ = self.report.send(Report::Final(Box::new(FinalReport {
            pid: self.pid,
            stats: self.stats.clone(),
            log,
            external: std::mem::take(&mut self.external),
            events: std::mem::take(&mut self.tele.events),
        })));
    }

    /// Microseconds since the shared run epoch — the telemetry timebase.
    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Emit `Resolved` telemetry for resolutions the core recorded since
    /// the last sync (cursor-idempotent, no-op when disabled).
    fn sync_tele(&mut self) {
        if self.tele.enabled() {
            let t = self.now_us();
            self.tele.sync_resolutions(t, self.pid, &self.core.resolutions);
            self.tele
                .sync_policy_shifts(t, self.pid, self.core.policy_shifts());
        }
    }

    fn maybe_report_done(&mut self) {
        if self.done_reported || !self.is_client {
            return;
        }
        let program_done = self
            .threads
            .values()
            .all(|t| matches!(t.status, Status::Done));
        if program_done && self.core.speculation_quiescent() {
            self.done_reported = true;
            let _ = self.report.send(Report::ClientDone(self.pid));
        }
    }

    /// Run every ready (thread, resume) item until quiescence.
    fn pump(&mut self) {
        while let Some((tid, resume)) = self.ready.pop_front() {
            let Some(th) = self.threads.get_mut(&tid) else {
                continue;
            };
            if th.status == Status::Done {
                continue;
            }
            th.status = Status::Ready;
            th.steps += 1;
            let behavior = self.behavior.clone();
            let effect = behavior.step(&mut th.state, resume);
            self.handle_effect(tid, effect);
        }
    }

    fn handle_effect(&mut self, tid: u32, effect: Effect) {
        match effect {
            Effect::Compute { cost } => {
                if !self.cfg.compute_unit.is_zero() && cost > 0 {
                    std::thread::sleep(self.cfg.compute_unit * cost as u32);
                }
                self.ready.push_back((tid, Resume::Continue));
            }
            Effect::Send { to, payload, label } => {
                self.send_data(tid, to, DataKind::Send, payload, label);
                self.ready.push_back((tid, Resume::Continue));
            }
            Effect::Call { to, payload, label } => {
                let cid = CallId(self.call_ids.fetch_add(1, Ordering::Relaxed));
                self.send_data(tid, to, DataKind::Call(cid), payload, label);
                self.threads.get_mut(&tid).unwrap().status = Status::BlockedCall(cid);
                self.try_deliver();
            }
            Effect::Reply { payload, label } => {
                let th = self.threads.get_mut(&tid).unwrap();
                let (to, cid, call_label) =
                    th.call_stack.pop().expect("Reply with no call in service");
                let label = if label.is_empty() {
                    opcsp_sim::reply_label(&call_label)
                } else {
                    label
                };
                self.send_data(tid, to, DataKind::Return(cid), payload, label);
                self.ready.push_back((tid, Resume::Continue));
            }
            Effect::Receive => {
                self.threads.get_mut(&tid).unwrap().status = Status::BlockedRecv;
                self.try_deliver();
            }
            Effect::External { payload } => {
                let guard_empty = self
                    .core
                    .threads
                    .get(&tid)
                    .map(|m| m.guard.is_empty())
                    .unwrap_or(true);
                let th = self.threads.get_mut(&tid).unwrap();
                th.oblog.push(Observable::Output {
                    payload: payload.clone(),
                });
                if guard_empty {
                    self.external.push(payload);
                } else {
                    th.out_buf.push(payload);
                }
                self.ready.push_back((tid, Resume::Continue));
            }
            Effect::CallThenFork {
                to,
                payload,
                label,
                site,
                guesses,
            } => {
                let cid = CallId(self.call_ids.fetch_add(1, Ordering::Relaxed));
                self.send_data(tid, to, DataKind::Call(cid), payload, label);
                let optimistic = self.cfg.optimism && self.core.can_fork(site);
                if optimistic {
                    let rec = self.core.fork(tid, site);
                    self.stats.forks += 1;
                    self.tele.record(TelemetryEvent::Fork {
                        t: self.start.elapsed().as_micros() as u64,
                        guess: rec.guess,
                        site,
                        left: tid,
                        right: rec.right_thread,
                    });
                    let left = self.threads.get_mut(&tid).unwrap();
                    left.fork_guess = Some(rec.guess);
                    left.status = Status::BlockedCall(cid);
                    let mut right = RtThread::new(left.state.clone());
                    right.call_stack = left.call_stack.clone();
                    right.checkpoints[0].call_stack = right.call_stack.clone();
                    self.threads.insert(rec.right_thread, right);
                    self.guesses.insert(rec.guess, guesses.clone());
                    self.ready
                        .push_back((rec.right_thread, Resume::ForkRight { guesses }));
                    self.schedule_fork_timer(rec.guess);
                } else {
                    self.threads.get_mut(&tid).unwrap().status = Status::BlockedCall(cid);
                }
                self.try_deliver();
            }
            Effect::Fork { site, guesses } => {
                let optimistic = self.cfg.optimism && self.core.can_fork(site);
                if !optimistic {
                    self.ready.push_back((tid, Resume::ForkDenied));
                    return;
                }
                let rec = self.core.fork(tid, site);
                self.stats.forks += 1;
                self.tele.record(TelemetryEvent::Fork {
                    t: self.start.elapsed().as_micros() as u64,
                    guess: rec.guess,
                    site,
                    left: tid,
                    right: rec.right_thread,
                });
                let left = self.threads.get_mut(&tid).unwrap();
                left.fork_guess = Some(rec.guess);
                let mut right = RtThread::new(left.state.clone());
                right.call_stack = left.call_stack.clone();
                right.checkpoints[0].call_stack = right.call_stack.clone();
                self.threads.insert(rec.right_thread, right);
                self.guesses.insert(rec.guess, guesses.clone());
                self.ready.push_back((tid, Resume::ForkLeft));
                self.ready
                    .push_back((rec.right_thread, Resume::ForkRight { guesses }));
                // Timer comes back through our own inbox.
                self.schedule_fork_timer(rec.guess);
            }
            Effect::JoinLeft { actual } => self.handle_join(tid, actual),
            Effect::Done => {
                let th = self.threads.get_mut(&tid).unwrap();
                th.status = Status::Done;
                if let Some(meta) = self.core.threads.get_mut(&tid) {
                    if meta.guard.is_empty() {
                        meta.phase = opcsp_core::ThreadPhase::Done;
                    }
                }
            }
        }
    }

    fn send_data(&mut self, tid: u32, to: ProcessId, kind: DataKind, payload: Value, label: String) {
        let tag = self.core.encode_for_send(tid, to);
        let env = Envelope {
            id: MsgId(self.msg_ids.fetch_add(1, Ordering::Relaxed)),
            from: self.pid,
            from_thread: tid,
            to,
            guard: tag.wire,
            table_acks: tag.acks,
            kind,
            payload: payload.clone(),
            label: label.into(),
            // The runtime's links are FIFO by construction (reliable
            // sublayer); link sequence numbers only matter to the
            // simulator's forensics, which replays draws by (link, seq)
            // address.
            link_seq: 0,
        };
        self.stats.data_messages += 1;
        self.stats.guard_bytes += env.guard.wire_size() as u64;
        if let opcsp_core::WireGuard::Compact { rows, .. } = &env.guard {
            self.stats.table_bytes += (rows.len() * opcsp_core::TableRow::WIRE_BYTES) as u64;
        }
        self.stats.table_bytes +=
            (env.table_acks.len() * opcsp_core::TableRow::WIRE_BYTES) as u64;
        self.core.note_send(&tag.full, to);
        let th = self.threads.get_mut(&tid).unwrap();
        th.oblog.push(Observable::Sent {
            to,
            kind: env.kind.into(),
            payload,
        });
        self.transport.send(to, Payload::Data(env));
    }

    /// Fork timers and transport ticks are self-addressed through the
    /// delayer and tagged [`FlushClass::DropOnFlush`]: a teardown flush
    /// must not fire a far-future fork timeout early (spurious aborts).
    fn schedule_fork_timer(&self, guess: GuessId) {
        self.delayer.send_after_class(
            self.cfg.fork_timeout,
            self.self_mailbox.clone(),
            Wire::Timer(guess),
            FlushClass::DropOnFlush,
        );
    }

    fn schedule_tick(&self) {
        self.delayer.send_after_class(
            self.transport.tick_interval(),
            self.self_mailbox.clone(),
            Wire::Tick,
            FlushClass::DropOnFlush,
        );
    }

    fn ctrl_kind(ctrl: &Control) -> u8 {
        match ctrl {
            Control::Commit(_) => 0,
            Control::Abort(_) => 1,
            Control::Precedence(..) => 2,
        }
    }

    /// Disseminate a control message: broadcast, or (with
    /// `targeted_control`) to recorded dependents plus — for PRECEDENCE —
    /// the guard members' owners; receivers relay onward (§4.2.5).
    fn broadcast(&mut self, ctrl: Control) {
        self.relayed
            .insert((Self::ctrl_kind(&ctrl), ctrl.subject()));
        let targets: Vec<usize> = if self.cfg.core.targeted_control {
            let mut t = self.core.dependents_of(ctrl.subject());
            if let Control::Precedence(_, guard) = &ctrl {
                for p in guard.member_processes() {
                    if p != self.pid {
                        t.insert(p);
                    }
                }
            }
            t.into_iter().map(|p| p.0 as usize).collect()
        } else {
            (0..self.transport.n_processes())
                .filter(|i| *i != self.pid.0 as usize)
                .collect()
        };
        for i in targets {
            self.stats.control_messages += 1;
            self.transport
                .send(ProcessId(i as u32), Payload::Ctrl(ctrl.clone()));
        }
    }

    /// Cooperative relay for targeted dissemination (once per message).
    fn relay_control(&mut self, ctrl: &Control) {
        if !self.cfg.core.targeted_control {
            return;
        }
        let key = (Self::ctrl_kind(ctrl), ctrl.subject());
        if !self.relayed.insert(key) {
            return;
        }
        let targets: Vec<usize> = self
            .core
            .dependents_of(ctrl.subject())
            .into_iter()
            .map(|p| p.0 as usize)
            .collect();
        for i in targets {
            self.stats.control_messages += 1;
            self.transport
                .send(ProcessId(i as u32), Payload::Ctrl(ctrl.clone()));
        }
    }

    // ------------------------------------------------------------------

    fn on_data(&mut self, mut env: Envelope) {
        // First classification ingests the wire tag (acks drained, rows
        // merged, compact guard decoded in place); the pooled
        // re-classification in `try_deliver`/`purge_pool` is a pure
        // re-check (pinned by `double_classification_of_pooled_envelope_
        // is_idempotent` in opcsp-core). An orphaned envelope is dropped
        // at the site that counts it, so `stats.orphans` sees each
        // envelope at most once per pooling.
        match self.core.classify_arrival(&mut env) {
            ArrivalVerdict::Orphan(g) => {
                self.stats.orphans += 1;
                self.record_orphan(env.id, g);
                return;
            }
            ArrivalVerdict::Ok => {}
        }
        if let DataKind::Return(cid) = env.kind {
            let waiter = self
                .threads
                .iter()
                .find(|(_, t)| t.status == Status::BlockedCall(cid))
                .map(|(id, _)| *id);
            if let Some(w) = waiter {
                if let Some(doomed) = self.core.return_depends_on_future(w, &env) {
                    let eff = self.core.on_abort(doomed);
                    self.apply_abort_effects(eff, Some(doomed));
                }
            }
        }
        self.pool.push(env);
        self.try_deliver();
    }

    fn record_orphan(&mut self, msg: MsgId, guess: GuessId) {
        if self.tele.enabled() {
            let t = self.now_us();
            self.tele.record(TelemetryEvent::Orphan {
                t,
                process: self.pid,
                msg,
                guess,
            });
        }
    }

    fn try_deliver(&mut self) {
        loop {
            let Some((tid, idx)) = self.pick_delivery() else {
                return;
            };
            let mut env = self.pool.remove(idx);
            if let ArrivalVerdict::Orphan(g) = self.core.classify_arrival(&mut env) {
                self.stats.orphans += 1;
                self.record_orphan(env.id, g);
                continue;
            }
            self.deliver_to(tid, env);
        }
    }

    fn pick_delivery(&mut self) -> Option<(u32, usize)> {
        if self.pool.is_empty() {
            return None;
        }
        for (tid, th) in &self.threads {
            if let Status::BlockedCall(cid) = th.status {
                if let Some(i) = self
                    .pool
                    .iter()
                    .position(|m| m.kind == DataKind::Return(cid))
                {
                    return Some((*tid, i));
                }
            }
        }
        for (tid, th) in &self.threads {
            if th.status != Status::BlockedRecv {
                continue;
            }
            // Withhold messages that depend on one of our own *live*
            // future guesses (§4.2.3). The liveness-based core check
            // also catches stale-incarnation guesses surviving in the
            // pool across an incarnation bump — an incarnation-equality
            // filter here once let those through prematurely (pinned by
            // `stale_incarnation_guess_still_withheld_from_earlier_thread`
            // in opcsp-core).
            let candidates: Vec<(usize, &Envelope)> = self
                .pool
                .iter()
                .enumerate()
                .filter(|(_, m)| {
                    !m.kind.is_return()
                        && self.core.guard_depends_on_future(*tid, m.guard()).is_none()
                })
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let envs: Vec<&Envelope> = candidates.iter().map(|(_, e)| *e).collect();
            if let Some(k) = self.core.choose_delivery(*tid, &envs) {
                return Some((*tid, candidates[k].0));
            }
        }
        None
    }

    fn deliver_to(&mut self, tid: u32, env: Envelope) {
        let new_deps = self.core.live_new_guard_count(tid, env.guard());
        let introduces = new_deps > 0;
        if introduces {
            let th = self.threads.get_mut(&tid).unwrap();
            th.checkpoints.push(Checkpoint {
                state: th.state.clone(),
                status: th.status,
                consumed_len: th.consumed.len(),
                oblog_len: th.oblog.len(),
                out_buf_len: th.out_buf.len(),
                call_stack: th.call_stack.clone(),
                fork_guess: th.fork_guess,
                steps_len: th.steps,
            });
        }
        if self.tele.enabled() {
            let t = self.now_us();
            self.tele.record(TelemetryEvent::Deliver {
                t,
                process: self.pid,
                thread: tid,
                msg: env.id,
                new_deps: new_deps as u32,
            });
        }
        let _ = self.core.deliver(tid, &env);
        let interval = self.core.threads[&tid].interval;
        let th = self.threads.get_mut(&tid).unwrap();
        th.consumed.push((interval, env.clone()));
        th.oblog.push(Observable::Received {
            from: env.from,
            kind: env.kind.into(),
            payload: env.payload.clone(),
        });
        if let DataKind::Call(cid) = env.kind {
            th.call_stack.push((env.from, cid, env.label.clone()));
        }
        // The resume is queued: the thread is no longer waiting, so a
        // second message released in the same transport batch must not be
        // delivered to it before `pump` runs. (The checkpoint above keeps
        // the *blocked* status, so rollback re-opens the receive.)
        th.status = Status::Ready;
        self.ready.push_back((tid, Resume::Msg(env)));
    }

    // ------------------------------------------------------------------

    fn handle_join(&mut self, tid: u32, actual: Vec<(String, Value)>) {
        let guess = self.threads[&tid].fork_guess;
        let Some(guess) = guess else {
            self.ready.push_back((tid, Resume::JoinSequential));
            return;
        };
        let expected = self.guesses.get(&guess).cloned().unwrap_or_default();
        let value_ok = expected
            .iter()
            .all(|(k, v)| actual.iter().any(|(ak, av)| ak == k && av == v));
        match self.core.join_left_done(guess, value_ok) {
            JoinDecision::Commit { committed } => {
                for g in committed {
                    self.local_commit(g);
                }
                self.flush_buffers();
            }
            JoinDecision::Abort { effects } => {
                let survives = !effects.rollback_threads.iter().any(|(t, _)| *t == tid)
                    && !effects.discard_threads.contains(&tid);
                let rerun = self.apply_abort_effects(effects, Some(guess));
                if survives && !rerun.contains(&guess) {
                    if let Some(th) = self.threads.get_mut(&tid) {
                        th.fork_guess = None;
                    }
                    self.ready.push_back((tid, Resume::JoinSequential));
                }
            }
            JoinDecision::Await {
                guess,
                precedence_guard,
            } => {
                self.threads.get_mut(&tid).unwrap().status = Status::AwaitingJoin;
                let wire = self.core.encode_control_guard(&precedence_guard);
                self.broadcast(Control::Precedence(guess, wire));
            }
            JoinDecision::AlreadyAborted { .. } => {
                if let Some(th) = self.threads.get_mut(&tid) {
                    th.fork_guess = None;
                }
                self.ready.push_back((tid, Resume::JoinSequential));
            }
        }
        self.sync_tele();
    }

    fn local_commit(&mut self, g: GuessId) {
        self.stats.commits += 1;
        if self.tele.enabled() {
            let t = self.now_us();
            self.tele.record(TelemetryEvent::WaveStart { t, guess: g });
        }
        self.sync_tele();
        self.broadcast(Control::Commit(g));
        if let Some(own) = self.core.own.get(&g) {
            let left = own.left_thread;
            if let Some(th) = self.threads.get_mut(&left) {
                th.status = Status::Done;
                th.fork_guess = None;
            }
        }
        self.flush_buffers();
    }

    fn on_ctrl(&mut self, ctrl: Control) {
        self.relay_control(&ctrl);
        match ctrl {
            Control::Commit(g) => {
                let eff = self.core.on_commit(g);
                if self.tele.enabled() {
                    let t = self.now_us();
                    self.tele.record(TelemetryEvent::WaveLanded {
                        t,
                        guess: g,
                        at: self.pid,
                    });
                }
                for own in eff.own_committed {
                    self.local_commit(own);
                }
                self.flush_buffers();
                self.try_deliver();
            }
            Control::Abort(g) => {
                let eff = self.core.on_abort(g);
                self.apply_abort_effects(eff, Some(g));
            }
            Control::Precedence(g, guard) => {
                let decoded = self.core.decode_control_guard(&guard);
                let eff = self.core.on_precedence(g, &decoded);
                let root = eff.own_aborted.first().copied();
                self.apply_abort_effects(eff, root);
            }
        }
        self.sync_tele();
    }

    fn on_timer(&mut self, guess: GuessId) {
        let unresolved = self
            .core
            .own
            .get(&guess)
            .map(|o| {
                matches!(
                    o.state,
                    opcsp_core::OwnGuessState::Pending
                        | opcsp_core::OwnGuessState::AwaitingResolution
                )
            })
            .unwrap_or(false);
        if !unresolved {
            return;
        }
        let eff = self.core.on_abort(guess);
        self.apply_abort_effects(eff, Some(guess));
    }

    fn apply_abort_effects(
        &mut self,
        effects: opcsp_core::AbortEffects,
        root: Option<GuessId>,
    ) -> Vec<GuessId> {
        // Wasted-step attribution: prefer the triggering guess the call
        // site named; a locally-detected cascade falls back to its first
        // own aborted guess.
        let root = root.or_else(|| effects.own_aborted.first().copied());
        for g in &effects.own_aborted {
            self.stats.aborts += 1;
            self.broadcast(Control::Abort(*g));
        }
        for tid in &effects.discard_threads {
            if let Some(mut th) = self.threads.remove(tid) {
                self.stats.discarded_threads += 1;
                if self.tele.enabled() {
                    let t = self.now_us();
                    self.tele.record(TelemetryEvent::Discard {
                        t,
                        process: self.pid,
                        thread: *tid,
                        intervals: (th.checkpoints.len() as u32).saturating_sub(1),
                        steps_lost: th.steps,
                        root,
                    });
                }
                for (_, env) in th.consumed.drain(..) {
                    self.pool.push(env);
                }
                // Drop any queued work for the dead thread.
                self.ready.retain(|(t, _)| t != tid);
            }
        }
        for (tid, slot) in &effects.rollback_threads {
            self.restore_thread(*tid, *slot, root);
        }
        let mut resumed = Vec::new();
        for g in &effects.rerun_sequential {
            let left = self.core.own.get(g).map(|o| o.left_thread);
            if let Some(left) = left {
                if let Some(th) = self.threads.get_mut(&left) {
                    th.fork_guess = None;
                    resumed.push(*g);
                    self.ready.push_back((left, Resume::JoinSequential));
                }
            }
        }
        self.purge_pool();
        self.try_deliver();
        // Restores can empty guards (resolved guesses are filtered out):
        // release any buffered external outputs that became safe.
        self.flush_buffers();
        self.sync_tele();
        resumed
    }

    fn restore_thread(&mut self, tid: u32, slot: u32, root: Option<GuessId>) {
        self.stats.rollbacks += 1;
        let Some(th) = self.threads.get_mut(&tid) else {
            return;
        };
        let slot = slot as usize;
        let chk = th.checkpoints[slot].clone();
        let depth = (th.checkpoints.len() - slot) as u32;
        let steps_lost = th.steps.saturating_sub(chk.steps_len);
        th.checkpoints.truncate(slot);
        th.state = chk.state;
        th.status = chk.status;
        th.call_stack = chk.call_stack;
        th.fork_guess = chk.fork_guess;
        th.oblog.truncate(chk.oblog_len);
        th.out_buf.truncate(chk.out_buf_len);
        th.steps = chk.steps_len;
        for (_, env) in th.consumed.split_off(chk.consumed_len) {
            self.pool.push(env);
        }
        // Cancel queued work for the rolled-back thread: it is blocked at
        // its checkpointed receive/call again.
        self.ready.retain(|(t, _)| *t != tid);
        if self.tele.enabled() {
            let t = self.now_us();
            self.tele.record(TelemetryEvent::Rollback {
                t,
                process: self.pid,
                thread: tid,
                depth,
                steps_lost,
                root,
            });
        }
    }

    fn purge_pool(&mut self) {
        let mut kept = Vec::with_capacity(self.pool.len());
        let mut orphans = Vec::new();
        for mut env in self.pool.drain(..) {
            match self.core.classify_arrival(&mut env) {
                ArrivalVerdict::Orphan(g) => {
                    self.stats.orphans += 1;
                    orphans.push((env.id, g));
                }
                ArrivalVerdict::Ok => kept.push(env),
            }
        }
        self.pool = kept;
        for (msg, g) in orphans {
            self.record_orphan(msg, g);
        }
    }

    fn flush_buffers(&mut self) {
        let mut released = Vec::new();
        for (tid, th) in self.threads.iter_mut() {
            let guard_empty = self
                .core
                .threads
                .get(tid)
                .map(|m| m.guard.is_empty())
                .unwrap_or(false);
            if guard_empty && !th.out_buf.is_empty() {
                released.append(&mut th.out_buf);
            }
        }
        self.external.extend(released);
    }
}
