//! Latency-injecting network for the real-thread runtime: a delayer
//! thread holds messages for their transit time before handing them to
//! the destination actor's inbox.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A deliverable item addressed to an actor inbox.
pub struct Delayed<T> {
    pub due: Instant,
    pub seq: u64,
    pub to: Sender<T>,
    pub item: T,
}

impl<T> PartialEq for Delayed<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<T> Eq for Delayed<T> {}
impl<T> PartialOrd for Delayed<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Delayed<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

enum Cmd<T> {
    Enqueue(Delayed<T>),
    Shutdown,
}

/// Handle to the delayer thread.
pub struct Delayer<T: Send + 'static> {
    tx: Sender<Cmd<T>>,
    handle: Option<JoinHandle<()>>,
    seq: std::sync::atomic::AtomicU64,
}

impl<T: Send + 'static> Delayer<T> {
    pub fn spawn() -> Self {
        let (tx, rx): (Sender<Cmd<T>>, Receiver<Cmd<T>>) = unbounded();
        let handle = std::thread::Builder::new()
            .name("opcsp-rt-delayer".into())
            .spawn(move || delayer_loop(rx))
            .expect("spawn delayer");
        Delayer {
            tx,
            handle: Some(handle),
            seq: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Deliver `item` to `to` after `delay`.
    pub fn send_after(&self, delay: Duration, to: Sender<T>, item: T) {
        let seq = self.seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let _ = self.tx.send(Cmd::Enqueue(Delayed {
            due: Instant::now() + delay,
            seq,
            to,
            item,
        }));
    }

    pub fn shutdown(mut self) {
        let _ = self.tx.send(Cmd::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl<T: Send + 'static> Drop for Delayer<T> {
    fn drop(&mut self) {
        let _ = self.tx.send(Cmd::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn delayer_loop<T>(rx: Receiver<Cmd<T>>) {
    let mut heap: BinaryHeap<Reverse<Delayed<T>>> = BinaryHeap::new();
    loop {
        // Wait for the next due item or a new command.
        let timeout = heap
            .peek()
            .map(|Reverse(d)| d.due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(Cmd::Enqueue(d)) => heap.push(Reverse(d)),
            Ok(Cmd::Shutdown) => {
                // Flush everything immediately so receivers can drain.
                while let Some(Reverse(d)) = heap.pop() {
                    let _ = d.to.send(d.item);
                }
                return;
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                while let Some(Reverse(d)) = heap.pop() {
                    let _ = d.to.send(d.item);
                }
                return;
            }
        }
        // Deliver everything due.
        let now = Instant::now();
        while heap.peek().map(|Reverse(d)| d.due <= now).unwrap_or(false) {
            let Reverse(d) = heap.pop().unwrap();
            let _ = d.to.send(d.item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_due_order_with_latency() {
        let delayer: Delayer<u32> = Delayer::spawn();
        let (tx, rx) = unbounded();
        let t0 = Instant::now();
        delayer.send_after(Duration::from_millis(30), tx.clone(), 2);
        delayer.send_after(Duration::from_millis(5), tx.clone(), 1);
        let first = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        let second = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!((first, second), (1, 2));
        assert!(t0.elapsed() >= Duration::from_millis(30));
        delayer.shutdown();
    }

    #[test]
    fn shutdown_flushes_pending() {
        let delayer: Delayer<u32> = Delayer::spawn();
        let (tx, rx) = unbounded();
        delayer.send_after(Duration::from_secs(60), tx, 7);
        delayer.shutdown();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 7);
    }

    #[test]
    fn zero_delay_is_immediate() {
        let delayer: Delayer<&'static str> = Delayer::spawn();
        let (tx, rx) = unbounded();
        delayer.send_after(Duration::ZERO, tx, "now");
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), "now");
    }
}
