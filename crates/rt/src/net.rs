//! Two-layer transport for the real-thread runtime (DESIGN.md §9).
//!
//! The paper's protocol (§2, §4.1.5) assumes a reliable FIFO network and
//! tolerates everything above that line with incarnation numbers. The
//! in-process crossbeam channels used by the runtime give reliability for
//! free, so none of that tolerance was ever exercised. This module makes
//! the network assumption explicit and *earned*:
//!
//! - a **chaos layer** ([`NetFaults`]) sits on the wire: per-link drop
//!   probability, duplication, a reorder window, and one-shot partition
//!   windows, all seeded and deterministic via the same splitmix64 keying
//!   as `opcsp_sim::latency::jitter_draw`;
//! - a **reliable-delivery sublayer** ([`Transport`]) sits under the
//!   protocol: per-link sequence numbers on every data/control frame,
//!   cumulative acks piggybacked on reverse traffic (plus standalone acks
//!   on idle), retransmission with exponential backoff and a cap, and
//!   receiver-side dedup + in-order release.
//!
//! The protocol core above therefore still sees the reliable FIFO network
//! it assumes, whatever the chaos layer does underneath.
//!
//! The [`Delayer`] thread remains the "wire": it holds items for their
//! transit time before handing them to the destination inbox. Items carry
//! a [`FlushClass`]: data and control frames are flushed on teardown so
//! receivers can drain, but timers (fork timeouts, retransmit ticks) are
//! *dropped* — flushing a far-future fork timer would fire it early and
//! record spurious aborts during teardown.

use crossbeam::channel::{unbounded, Receiver, Sender};
use opcsp_core::{Control, Envelope, GuessId, ProcessId};
use opcsp_sim::latency::splitmix64;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Wire items
// ---------------------------------------------------------------------------

/// What travels on the simulated network or arrives in an actor inbox.
#[derive(Debug)]
pub enum Wire {
    /// A reliable-sublayer frame (data, control, or a standalone ack).
    Frame(Frame),
    /// Fork timeout for a guess (self-addressed; never framed or chaosed).
    Timer(GuessId),
    /// Periodic transport maintenance: retransmits + idle acks.
    Tick,
    /// Coordinator quiescence probe; the actor answers with
    /// `Report::Quiet` carrying this round number.
    Probe(u64),
    /// Final halt: the coordinator has established global quiescence (or
    /// given up); the actor reports and exits.
    Shutdown,
}

/// Protocol payload carried by a reliable frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    Data(Envelope),
    Ctrl(Control),
}

/// Address of a process inbox, independent of executor shape (DESIGN.md
/// §11): the threaded executor gives every actor a dedicated channel; the
/// sharded executor multiplexes a worker's whole shard over one channel
/// with the destination pid tagged on each item, so a scheduling round can
/// drain cross-shard traffic in one batch.
#[derive(Clone)]
pub enum Mailbox {
    /// Dedicated per-process channel (thread-per-process executor).
    Direct(Sender<Wire>),
    /// Shared shard channel; the worker demultiplexes by pid.
    Shard {
        pid: ProcessId,
        tx: Sender<(ProcessId, Wire)>,
    },
    /// The process lives in another OS process (`rt::sock`): frames go to
    /// the local socket-writer pump, which serializes them
    /// (`core::wire::encode_frame`) and ships them to the parent router.
    /// Only reliable-sublayer frames cross the wire — timers, ticks,
    /// probes, and shutdowns are always addressed to *local* actors by
    /// construction, so anything else arriving here is silently dropped.
    Remote(Sender<Frame>),
}

impl Mailbox {
    /// Deliver an item; `false` if the receiving executor already exited.
    pub fn send(&self, w: Wire) -> bool {
        match self {
            Mailbox::Direct(tx) => tx.send(w).is_ok(),
            Mailbox::Shard { pid, tx } => tx.send((*pid, w)).is_ok(),
            Mailbox::Remote(tx) => match w {
                Wire::Frame(f) => tx.send(f).is_ok(),
                _ => true,
            },
        }
    }
}

/// Destination of a [`Delayer`] item — anything that can absorb a `T`.
/// Plain channel senders work as before; [`Mailbox`] routes to whichever
/// executor owns the target process.
pub trait DeliverTo<T>: Send {
    fn deliver(&self, item: T);
}

impl<T: Send> DeliverTo<T> for Sender<T> {
    fn deliver(&self, item: T) {
        let _ = self.send(item);
    }
}

impl DeliverTo<Wire> for Mailbox {
    fn deliver(&self, item: Wire) {
        self.send(item);
    }
}

/// One reliable-sublayer frame on the directed link `from → to`.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    pub from: ProcessId,
    pub to: ProcessId,
    /// Cumulative ack for the reverse link: the sender has released every
    /// frame with `seq < ack` from `to` to its protocol core.
    pub ack: u64,
    /// `Some((seq, payload))` for a sequenced message; `None` for a
    /// standalone ack.
    pub msg: Option<(u64, Payload)>,
}

// ---------------------------------------------------------------------------
// Chaos layer
// ---------------------------------------------------------------------------

/// A one-shot partition window: the directed link `from → to` drops every
/// frame between `start_ms` and `start_ms + duration_ms` after run start.
/// Retransmission recovers once the window closes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    pub from: ProcessId,
    pub to: ProcessId,
    pub start_ms: u64,
    pub duration_ms: u64,
}

/// Seeded, deterministic network fault injection. Every decision is a
/// pure function of `(seed, from, to, transmission index)` through the
/// same splitmix64 finalizer as `latency::jitter_draw`, so a given seed
/// drops/duplicates/delays the same physical transmissions in every run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetFaults {
    pub seed: u64,
    /// Per-transmission drop probability in `[0, 1)`.
    pub drop: f64,
    /// Per-transmission duplication probability in `[0, 1)`.
    pub dup: f64,
    /// Reorder window: each transmission may be delayed by up to this many
    /// extra latency steps, scrambling inter-frame order on the link.
    pub reorder: u32,
    /// One-shot partition windows.
    pub partitions: Vec<Partition>,
}

const SALT_DROP: u64 = 0xD20B_0001;
const SALT_DUP: u64 = 0xD20B_0002;
const SALT_REORDER: u64 = 0xD20B_0003;
const SALT_DUP_REORDER: u64 = 0xD20B_0004;

impl NetFaults {
    /// A fault-free configuration (the chaos layer is pass-through).
    pub fn none() -> NetFaults {
        NetFaults::default()
    }

    pub fn is_active(&self) -> bool {
        self.drop > 0.0 || self.dup > 0.0 || self.reorder > 0 || !self.partitions.is_empty()
    }

    fn raw(&self, salt: u64, from: ProcessId, to: ProcessId, xmit: u64) -> u64 {
        let link = ((from.0 as u64) << 32) | to.0 as u64;
        splitmix64(splitmix64(self.seed ^ salt ^ link) ^ xmit.wrapping_mul(0xA5A5))
    }

    fn unit(&self, salt: u64, from: ProcessId, to: ProcessId, xmit: u64) -> f64 {
        self.raw(salt, from, to, xmit) as f64 / u64::MAX as f64
    }

    /// Is the `xmit`-th physical transmission on `from → to` dropped?
    pub fn drops(&self, from: ProcessId, to: ProcessId, xmit: u64) -> bool {
        self.drop > 0.0 && self.unit(SALT_DROP, from, to, xmit) < self.drop
    }

    /// Is the `xmit`-th physical transmission duplicated?
    pub fn duplicates(&self, from: ProcessId, to: ProcessId, xmit: u64) -> bool {
        self.dup > 0.0 && self.unit(SALT_DUP, from, to, xmit) < self.dup
    }

    /// Extra delay steps (uniform in `[0, reorder]`) for the transmission;
    /// `dup_copy` keys the duplicate's delay independently so the two
    /// copies usually land in different order.
    pub fn reorder_steps(&self, from: ProcessId, to: ProcessId, xmit: u64, dup_copy: bool) -> u32 {
        if self.reorder == 0 {
            return 0;
        }
        let salt = if dup_copy { SALT_DUP_REORDER } else { SALT_REORDER };
        (self.raw(salt, from, to, xmit) % (self.reorder as u64 + 1)) as u32
    }

    /// Is the link inside one of its partition windows `since` run start?
    pub fn partitioned(&self, from: ProcessId, to: ProcessId, since_start: Duration) -> bool {
        let ms = since_start.as_millis() as u64;
        self.partitions.iter().any(|p| {
            p.from == from && p.to == to && ms >= p.start_ms && ms < p.start_ms + p.duration_ms
        })
    }

    /// Parse a chaos spec: comma-separated `key=value` with keys `drop`,
    /// `dup` (probabilities), `reorder` (window), `seed`, and repeatable
    /// `part=FROM-TO@START+DURATION` windows in milliseconds, e.g.
    /// `drop=0.2,dup=0.1,reorder=3,seed=7,part=0-1@100+50`.
    pub fn parse(spec: &str) -> Result<NetFaults, String> {
        let mut f = NetFaults::default();
        for item in spec.split(',').filter(|s| !s.is_empty()) {
            let (k, v) = item
                .split_once('=')
                .ok_or_else(|| format!("chaos spec item `{item}` is not key=value"))?;
            let bad = |e: &dyn std::fmt::Display| format!("chaos spec `{k}`: {e}");
            match k {
                "drop" => f.drop = v.parse().map_err(|e| bad(&e))?,
                "dup" => f.dup = v.parse().map_err(|e| bad(&e))?,
                "reorder" => f.reorder = v.parse().map_err(|e| bad(&e))?,
                "seed" => f.seed = v.parse().map_err(|e| bad(&e))?,
                "part" => {
                    let (link, window) = v
                        .split_once('@')
                        .ok_or_else(|| bad(&"expected FROM-TO@START+DURATION"))?;
                    let (from, to) = link
                        .split_once('-')
                        .ok_or_else(|| bad(&"expected FROM-TO@START+DURATION"))?;
                    let (start, dur) = window
                        .split_once('+')
                        .ok_or_else(|| bad(&"expected FROM-TO@START+DURATION"))?;
                    f.partitions.push(Partition {
                        from: ProcessId(from.parse().map_err(|e| bad(&e))?),
                        to: ProcessId(to.parse().map_err(|e| bad(&e))?),
                        start_ms: start.parse().map_err(|e| bad(&e))?,
                        duration_ms: dur.parse().map_err(|e| bad(&e))?,
                    });
                }
                other => return Err(format!("unknown chaos spec key `{other}`")),
            }
        }
        if !(0.0..1.0).contains(&f.drop) || !(0.0..1.0).contains(&f.dup) {
            return Err("chaos probabilities must be in [0, 1)".into());
        }
        Ok(f)
    }
}

// ---------------------------------------------------------------------------
// Reliable-delivery sublayer
// ---------------------------------------------------------------------------

/// Transport counters, merged into `RtStats` per actor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Transmissions the chaos layer dropped (incl. partition windows).
    pub drops_injected: u64,
    /// Transmissions the chaos layer duplicated.
    pub dups_injected: u64,
    /// Retransmissions of unacked frames.
    pub retransmits: u64,
    /// Standalone ack frames sent (piggybacked acks are free).
    pub acks: u64,
    /// Frames released to the protocol after waiting in the out-of-order
    /// buffer (i.e. the chaos layer genuinely reordered the link).
    pub reorder_releases: u64,
    /// Reliable messages originated (excluding retransmits and acks).
    pub frames_sent: u64,
    /// Frames released in order to the protocol core.
    pub frames_delivered: u64,
}

impl NetStats {
    pub fn merge(&mut self, o: NetStats) {
        self.drops_injected += o.drops_injected;
        self.dups_injected += o.dups_injected;
        self.retransmits += o.retransmits;
        self.acks += o.acks;
        self.reorder_releases += o.reorder_releases;
        self.frames_sent += o.frames_sent;
        self.frames_delivered += o.frames_delivered;
    }
}

/// Transport maintenance cadence for a given injected latency: half the
/// base RTO. Shared by both executors — the threaded executor schedules a
/// per-actor delayer timer at this interval, the sharded executor runs a
/// whole-shard tick sweep on the same cadence.
pub fn tick_interval_for(latency: Duration) -> Duration {
    let rto = (latency * 4).max(Duration::from_millis(8));
    (rto / 2).max(Duration::from_millis(2))
}

struct Unacked {
    seq: u64,
    body: Payload,
    /// Next retransmission due time.
    due: Instant,
    /// Retransmissions so far; the backoff delay is derived from this via
    /// [`retransmit_backoff`], never accumulated in place.
    attempts: u32,
}

/// Exponential retransmit backoff: `rto << attempts`, capped. The shift
/// exponent is clamped *before* shifting — a frame stuck behind a long
/// partition can accumulate hundreds of retransmit attempts, and an
/// unclamped `1 << attempts` overflows (a panic in debug builds) long
/// before the cap would have kicked in. Clamping at 16 is safe: the cap is
/// ≤ 500 ms and the base RTO ≥ 8 ms, so every attempt past 6 doublings is
/// already pinned at the cap.
pub fn retransmit_backoff(rto: Duration, cap: Duration, attempts: u32) -> Duration {
    const SHIFT_CLAMP: u32 = 16;
    let factor = 1u32 << attempts.min(SHIFT_CLAMP);
    rto.saturating_mul(factor).min(cap).max(rto)
}

#[derive(Default)]
struct LinkTx {
    next_seq: u64,
    unacked: VecDeque<Unacked>,
    /// Physical transmission counter — the chaos draw key, advanced by
    /// every copy put on the wire (originals, retransmits, acks).
    xmit: u64,
}

#[derive(Default)]
struct LinkRx {
    /// Everything below this has been released in order.
    next_expected: u64,
    /// Out-of-order holding buffer.
    ooo: BTreeMap<u64, Payload>,
    /// An ack is owed and has not been piggybacked yet.
    ack_owed: bool,
}

/// Per-actor endpoint of the reliable-delivery sublayer. Owned by the
/// actor thread; all sends go out through the [`Delayer`] (the wire) and
/// all receives come back through the actor's inbox as [`Wire::Frame`]s.
pub struct Transport {
    me: ProcessId,
    faults: NetFaults,
    latency: Duration,
    rto: Duration,
    rto_cap: Duration,
    start: Instant,
    delayer: Arc<Delayer<Wire>>,
    net: Arc<Vec<Mailbox>>,
    tx: BTreeMap<ProcessId, LinkTx>,
    rx: BTreeMap<ProcessId, LinkRx>,
    /// Frames awaiting an ack, across all links (kept incrementally so
    /// [`Transport::needs_tick`] is O(1) — the sharded executor polls it
    /// for every actor every tick round).
    unacked_total: u64,
    /// Links currently owing a standalone ack, kept incrementally for the
    /// same reason.
    acks_owed: usize,
    pub stats: NetStats,
}

impl Transport {
    pub fn new(
        me: ProcessId,
        faults: NetFaults,
        latency: Duration,
        start: Instant,
        delayer: Arc<Delayer<Wire>>,
        net: Arc<Vec<Mailbox>>,
    ) -> Transport {
        let rto = (latency * 4).max(Duration::from_millis(8));
        Transport {
            me,
            faults,
            latency,
            rto,
            rto_cap: (rto * 16).min(Duration::from_millis(500)).max(rto),
            start,
            delayer,
            net,
            tx: BTreeMap::new(),
            rx: BTreeMap::new(),
            unacked_total: 0,
            acks_owed: 0,
            stats: NetStats::default(),
        }
    }

    /// How often the owning actor should run [`Transport::tick`].
    pub fn tick_interval(&self) -> Duration {
        tick_interval_for(self.latency)
    }

    /// Number of processes on the network.
    pub fn n_processes(&self) -> usize {
        self.net.len()
    }

    /// Would [`Transport::tick`] do anything right now? O(1); the sharded
    /// executor uses this to skip idle actors in its per-round tick sweep
    /// (at 10k+ processes, unconditionally scanning every transport's
    /// links each round would dominate the scheduler).
    pub fn needs_tick(&self) -> bool {
        self.unacked_total > 0 || self.acks_owed > 0
    }

    /// Send a payload reliably: assign the next link sequence number,
    /// buffer for retransmission, and put one copy on the (chaotic) wire.
    pub fn send(&mut self, to: ProcessId, body: Payload) {
        let link = self.tx.entry(to).or_default();
        let seq = link.next_seq;
        link.next_seq += 1;
        link.unacked.push_back(Unacked {
            seq,
            body: body.clone(),
            due: Instant::now() + self.rto,
            attempts: 0,
        });
        self.unacked_total += 1;
        self.stats.frames_sent += 1;
        self.transmit(to, Some((seq, body)), false);
    }

    /// One physical transmission through the chaos layer.
    fn transmit(&mut self, to: ProcessId, msg: Option<(u64, Payload)>, is_retx: bool) {
        if is_retx {
            self.stats.retransmits += 1;
        }
        // Piggyback the cumulative ack for the reverse link.
        let ack = match self.rx.get_mut(&to) {
            Some(r) => {
                if r.ack_owed {
                    self.acks_owed -= 1;
                    r.ack_owed = false;
                }
                r.next_expected
            }
            None => 0,
        };
        let xmit = {
            let l = self.tx.entry(to).or_default();
            let x = l.xmit;
            l.xmit += 1;
            x
        };
        if self.faults.partitioned(self.me, to, self.start.elapsed())
            || self.faults.drops(self.me, to, xmit)
        {
            // Lost on the wire; retransmission recovers.
            self.stats.drops_injected += 1;
            return;
        }
        let frame = Frame {
            from: self.me,
            to,
            ack,
            msg,
        };
        let step = self.latency.max(Duration::from_millis(1));
        let extra = self.faults.reorder_steps(self.me, to, xmit, false);
        self.put_on_wire(to, frame.clone(), self.latency + step * extra);
        if self.faults.duplicates(self.me, to, xmit) {
            self.stats.dups_injected += 1;
            let extra = self.faults.reorder_steps(self.me, to, xmit, true);
            self.put_on_wire(to, frame, self.latency + step * extra);
        }
    }

    fn put_on_wire(&self, to: ProcessId, frame: Frame, delay: Duration) {
        let mb = &self.net[to.0 as usize];
        if delay.is_zero() {
            // Zero-latency fast path: skip the delayer thread entirely.
            // Per-link FIFO is preserved — a link's frames are all put on
            // the wire by the one executor thread that owns the sender,
            // and either *every* frame on the link takes this path
            // (latency 0, no reorder chaos) or the reliable sublayer
            // restores order anyway.
            mb.send(Wire::Frame(frame));
        } else {
            self.delayer.send_after(delay, mb.clone(), Wire::Frame(frame));
        }
    }

    /// Ingest a frame from the wire. Returns the payloads released *in
    /// per-link order* to the protocol core (possibly none: duplicates are
    /// suppressed, gaps are held back).
    pub fn on_frame(&mut self, f: Frame) -> Vec<Payload> {
        debug_assert_eq!(f.to, self.me, "misrouted frame");
        // Cumulative ack: everything below f.ack is confirmed delivered.
        if let Some(l) = self.tx.get_mut(&f.from) {
            while l.unacked.front().map(|u| u.seq < f.ack).unwrap_or(false) {
                l.unacked.pop_front();
                self.unacked_total -= 1;
            }
        }
        let mut out = Vec::new();
        let mut reordered = 0u64;
        if let Some((seq, body)) = f.msg {
            let r = self.rx.entry(f.from).or_default();
            let was_owed = r.ack_owed;
            if seq < r.next_expected || r.ooo.contains_key(&seq) {
                // Duplicate (injected, or a retransmit racing its ack):
                // owe a fresh ack so the sender stops retransmitting.
                r.ack_owed = true;
            } else {
                r.ooo.insert(seq, body);
                while let Some(b) = r.ooo.remove(&r.next_expected) {
                    if r.next_expected != seq {
                        reordered += 1; // waited in the buffer: a real reorder
                    }
                    r.next_expected += 1;
                    r.ack_owed = true;
                    out.push(b);
                }
            }
            if r.ack_owed && !was_owed {
                self.acks_owed += 1;
            }
        }
        self.stats.reorder_releases += reordered;
        self.stats.frames_delivered += out.len() as u64;
        out
    }

    /// Periodic maintenance: retransmit overdue unacked frames (with
    /// exponential backoff up to the cap) and send standalone acks for
    /// links with no reverse traffic.
    pub fn tick(&mut self) {
        if self.unacked_total == 0 {
            self.flush_acks();
            return;
        }
        let now = Instant::now();
        let peers: Vec<ProcessId> = self.tx.keys().copied().collect();
        for p in peers {
            let due: Vec<(u64, Payload)> = {
                let (rto, cap) = (self.rto, self.rto_cap);
                let l = self.tx.get_mut(&p).unwrap();
                l.unacked
                    .iter_mut()
                    .filter(|u| u.due <= now)
                    .map(|u| {
                        u.attempts = u.attempts.saturating_add(1);
                        u.due = now + retransmit_backoff(rto, cap, u.attempts);
                        (u.seq, u.body.clone())
                    })
                    .collect()
            };
            for (seq, body) in due {
                self.transmit(p, Some((seq, body)), true);
            }
        }
        self.flush_acks();
    }

    /// Send standalone acks for every link that owes one.
    pub fn flush_acks(&mut self) {
        if self.acks_owed == 0 {
            return;
        }
        let owed: Vec<ProcessId> = self
            .rx
            .iter()
            .filter(|(_, r)| r.ack_owed)
            .map(|(p, _)| *p)
            .collect();
        for p in owed {
            self.stats.acks += 1;
            self.transmit(p, None, false);
        }
    }

    /// Quiescence probe triple: (messages originated, messages released,
    /// messages still unacked). The coordinator declares the network
    /// quiescent when every actor reports zero unacked and the counters
    /// are unchanged across two consecutive probe rounds.
    pub fn quiet_probe(&self) -> (u64, u64, u64) {
        debug_assert_eq!(
            self.unacked_total,
            self.tx.values().map(|l| l.unacked.len() as u64).sum::<u64>()
        );
        (
            self.stats.frames_sent,
            self.stats.frames_delivered,
            self.unacked_total,
        )
    }
}

// ---------------------------------------------------------------------------
// Delayer (the wire)
// ---------------------------------------------------------------------------

/// Teardown-flush behavior of a delayed item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushClass {
    /// Deliver on teardown flush: data and control must drain.
    Deliver,
    /// Drop on teardown flush: far-future timers (fork timeouts, ticks)
    /// must NOT fire early — an early fork timer records spurious aborts.
    DropOnFlush,
}

/// A deliverable item addressed to an actor inbox (or any other
/// [`DeliverTo`] destination).
pub struct Delayed<T> {
    pub due: Instant,
    pub seq: u64,
    pub to: Box<dyn DeliverTo<T>>,
    pub item: T,
    pub class: FlushClass,
}

impl<T> PartialEq for Delayed<T> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl<T> Eq for Delayed<T> {}
impl<T> PartialOrd for Delayed<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Delayed<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

enum Cmd<T> {
    Enqueue(Delayed<T>),
    Shutdown,
}

/// Handle to the delayer thread.
pub struct Delayer<T: Send + 'static> {
    tx: Sender<Cmd<T>>,
    handle: Option<JoinHandle<()>>,
    seq: std::sync::atomic::AtomicU64,
}

impl<T: Send + 'static> Delayer<T> {
    pub fn spawn() -> Self {
        let (tx, rx): (Sender<Cmd<T>>, Receiver<Cmd<T>>) = unbounded();
        let handle = std::thread::Builder::new()
            .name("opcsp-rt-delayer".into())
            .spawn(move || delayer_loop(rx))
            .expect("spawn delayer");
        Delayer {
            tx,
            handle: Some(handle),
            seq: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Deliver `item` to `to` after `delay` (flushed on teardown).
    pub fn send_after(&self, delay: Duration, to: impl DeliverTo<T> + 'static, item: T) {
        self.send_after_class(delay, to, item, FlushClass::Deliver);
    }

    /// Deliver `item` to `to` after `delay` with an explicit flush class.
    pub fn send_after_class(
        &self,
        delay: Duration,
        to: impl DeliverTo<T> + 'static,
        item: T,
        class: FlushClass,
    ) {
        let seq = self.seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let _ = self.tx.send(Cmd::Enqueue(Delayed {
            due: Instant::now() + delay,
            seq,
            to: Box::new(to),
            item,
            class,
        }));
    }

    pub fn shutdown(mut self) {
        let _ = self.tx.send(Cmd::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl<T: Send + 'static> Drop for Delayer<T> {
    fn drop(&mut self) {
        let _ = self.tx.send(Cmd::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Flush on teardown: deliver pending data/control immediately so
/// receivers can drain, but drop timer-class items — a far-future fork
/// timer delivered "now" would fire early and record spurious aborts.
fn flush<T>(heap: &mut BinaryHeap<Reverse<Delayed<T>>>) {
    while let Some(Reverse(d)) = heap.pop() {
        if d.class == FlushClass::Deliver {
            d.to.deliver(d.item);
        }
    }
}

fn delayer_loop<T>(rx: Receiver<Cmd<T>>) {
    let mut heap: BinaryHeap<Reverse<Delayed<T>>> = BinaryHeap::new();
    loop {
        // Wait for the next due item or a new command.
        let timeout = heap
            .peek()
            .map(|Reverse(d)| d.due.saturating_duration_since(Instant::now()))
            .unwrap_or(Duration::from_millis(50));
        match rx.recv_timeout(timeout) {
            Ok(Cmd::Enqueue(d)) => heap.push(Reverse(d)),
            Ok(Cmd::Shutdown) => {
                flush(&mut heap);
                return;
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                flush(&mut heap);
                return;
            }
        }
        // Deliver everything due.
        let now = Instant::now();
        while heap.peek().map(|Reverse(d)| d.due <= now).unwrap_or(false) {
            let Reverse(d) = heap.pop().unwrap();
            d.to.deliver(d.item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_due_order_with_latency() {
        let delayer: Delayer<u32> = Delayer::spawn();
        let (tx, rx) = unbounded();
        let t0 = Instant::now();
        delayer.send_after(Duration::from_millis(30), tx.clone(), 2);
        delayer.send_after(Duration::from_millis(5), tx.clone(), 1);
        let first = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        let second = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!((first, second), (1, 2));
        assert!(t0.elapsed() >= Duration::from_millis(30));
        delayer.shutdown();
    }

    #[test]
    fn shutdown_flushes_pending_data() {
        let delayer: Delayer<u32> = Delayer::spawn();
        let (tx, rx) = unbounded();
        delayer.send_after(Duration::from_secs(60), tx, 7);
        delayer.shutdown();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 7);
    }

    /// Regression pin (ISSUE 4): teardown flush used to deliver *all*
    /// pending items, including far-future fork-timeout timers, which then
    /// fired early and could record spurious aborts during teardown. Data
    /// still flushes; timer-class items are dropped.
    #[test]
    fn shutdown_flush_drops_timer_class_items() {
        let delayer: Delayer<&'static str> = Delayer::spawn();
        let (tx, rx) = unbounded();
        delayer.send_after_class(
            Duration::from_secs(60),
            tx.clone(),
            "fork-timer",
            FlushClass::DropOnFlush,
        );
        delayer.send_after(Duration::from_secs(60), tx, "commit");
        delayer.shutdown();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), "commit");
        assert!(
            rx.try_recv().is_err(),
            "the far-future timer must not fire early on flush"
        );
    }

    #[test]
    fn zero_delay_is_immediate() {
        let delayer: Delayer<&'static str> = Delayer::spawn();
        let (tx, rx) = unbounded();
        delayer.send_after(Duration::ZERO, tx, "now");
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), "now");
    }

    #[test]
    fn chaos_draws_are_deterministic_and_seed_sensitive() {
        let f = NetFaults {
            seed: 7,
            drop: 0.3,
            dup: 0.2,
            reorder: 3,
            partitions: vec![],
        };
        let g = NetFaults { seed: 8, ..f.clone() };
        let (a, b) = (ProcessId(0), ProcessId(1));
        let fd: Vec<bool> = (0..64).map(|x| f.drops(a, b, x)).collect();
        assert_eq!(fd, (0..64).map(|x| f.drops(a, b, x)).collect::<Vec<_>>());
        assert_ne!(
            fd,
            (0..64).map(|x| g.drops(a, b, x)).collect::<Vec<_>>(),
            "different seeds must differ somewhere in 64 draws"
        );
        assert!(fd.iter().any(|d| *d), "drop=0.3 must fire within 64 draws");
        assert!((0..64).any(|x| f.duplicates(a, b, x)));
        assert!((0..64).all(|x| f.reorder_steps(a, b, x, false) <= 3));
        // Per-link independence: the reverse link draws differently.
        assert_ne!(fd, (0..64).map(|x| f.drops(b, a, x)).collect::<Vec<_>>());
    }

    #[test]
    fn partition_windows_are_one_shot_and_directional() {
        let f = NetFaults {
            partitions: vec![Partition {
                from: ProcessId(0),
                to: ProcessId(1),
                start_ms: 100,
                duration_ms: 50,
            }],
            ..NetFaults::default()
        };
        let ms = Duration::from_millis;
        assert!(!f.partitioned(ProcessId(0), ProcessId(1), ms(99)));
        assert!(f.partitioned(ProcessId(0), ProcessId(1), ms(100)));
        assert!(f.partitioned(ProcessId(0), ProcessId(1), ms(149)));
        assert!(!f.partitioned(ProcessId(0), ProcessId(1), ms(150)));
        assert!(!f.partitioned(ProcessId(1), ProcessId(0), ms(120)));
    }

    #[test]
    fn chaos_spec_parses() {
        let f = NetFaults::parse("drop=0.2,dup=0.1,reorder=3,seed=7,part=0-1@100+50").unwrap();
        assert_eq!(f.drop, 0.2);
        assert_eq!(f.dup, 0.1);
        assert_eq!(f.reorder, 3);
        assert_eq!(f.seed, 7);
        assert_eq!(
            f.partitions,
            vec![Partition {
                from: ProcessId(0),
                to: ProcessId(1),
                start_ms: 100,
                duration_ms: 50,
            }]
        );
        assert!(f.is_active());
        assert!(!NetFaults::none().is_active());
        assert!(NetFaults::parse("drop=1.5").is_err());
        assert!(NetFaults::parse("bogus=1").is_err());
        assert!(NetFaults::parse("part=0-1").is_err());
    }

    /// Transport pair on a lossy link: everything sent is released in
    /// order exactly once, with retransmits and dedup doing the work.
    #[test]
    fn transport_survives_drop_dup_reorder() {
        let (a, b) = (ProcessId(0), ProcessId(1));
        let delayer: Arc<Delayer<Wire>> = Arc::new(Delayer::spawn());
        let (tx_a, rx_a) = unbounded::<Wire>();
        let (tx_b, rx_b) = unbounded::<Wire>();
        let net: Arc<Vec<Mailbox>> =
            Arc::new(vec![Mailbox::Direct(tx_a), Mailbox::Direct(tx_b)]);
        let faults = NetFaults {
            seed: 42,
            drop: 0.3,
            dup: 0.2,
            reorder: 4,
            partitions: vec![],
        };
        let start = Instant::now();
        let lat = Duration::from_millis(1);
        let mut ta = Transport::new(a, faults.clone(), lat, start, delayer.clone(), net.clone());
        let mut tb = Transport::new(b, faults, lat, start, delayer.clone(), net);
        let n = 40u64;
        for i in 0..n {
            ta.send(
                b,
                Payload::Ctrl(Control::Commit(opcsp_core::GuessId {
                    process: a,
                    incarnation: opcsp_core::Incarnation(0),
                    index: i as u32,
                })),
            );
        }
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while got.len() < n as usize && Instant::now() < deadline {
            // Drive both endpoints: B releases + acks, A retransmits.
            while let Ok(w) = rx_b.try_recv() {
                if let Wire::Frame(f) = w {
                    for p in tb.on_frame(f) {
                        if let Payload::Ctrl(Control::Commit(g)) = p {
                            got.push(g.index as u64);
                        } else {
                            panic!("unexpected payload");
                        }
                    }
                }
            }
            while let Ok(w) = rx_a.try_recv() {
                if let Wire::Frame(f) = w {
                    assert!(ta.on_frame(f).is_empty(), "A sent nothing to release");
                }
            }
            ta.tick();
            tb.tick();
            std::thread::sleep(Duration::from_millis(1));
        }
        // Settle: keep driving until B's final acks land at A.
        while ta.quiet_probe().2 > 0 && Instant::now() < deadline {
            while let Ok(w) = rx_b.try_recv() {
                if let Wire::Frame(f) = w {
                    assert!(tb.on_frame(f).is_empty(), "no fresh payloads expected");
                }
            }
            while let Ok(w) = rx_a.try_recv() {
                if let Wire::Frame(f) = w {
                    assert!(ta.on_frame(f).is_empty(), "A sent nothing to release");
                }
            }
            ta.tick();
            tb.tick();
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            got,
            (0..n).collect::<Vec<_>>(),
            "in-order exactly-once release"
        );
        assert!(ta.stats.drops_injected > 0, "{:?}", ta.stats);
        assert!(ta.stats.dups_injected > 0, "{:?}", ta.stats);
        assert!(ta.stats.retransmits > 0, "{:?}", ta.stats);
        assert!(tb.stats.reorder_releases > 0, "{:?}", tb.stats);
        assert_eq!(ta.quiet_probe().2, 0, "everything acked at the end");
    }

    /// A frame stranded behind a long partition keeps retransmitting far
    /// past the point where doubling overflows an unclamped shift. Drive
    /// the backoff through 40+ retransmit attempts (and on past u32 shift
    /// width): every delay must stay within [rto, cap], be monotonically
    /// non-decreasing, and reach the cap — with no overflow panic in debug
    /// builds.
    #[test]
    fn backoff_survives_40_plus_retransmits() {
        let rto = Duration::from_millis(8);
        let cap = Duration::from_millis(500);
        let mut prev = Duration::ZERO;
        for attempts in 0..=100u32 {
            let d = retransmit_backoff(rto, cap, attempts);
            assert!(d >= rto && d <= cap, "attempt {attempts}: {d:?}");
            assert!(d >= prev, "attempt {attempts}: backoff regressed");
            prev = d;
        }
        assert_eq!(retransmit_backoff(rto, cap, 40), cap);
        assert_eq!(retransmit_backoff(rto, cap, u32::MAX), cap);
        // Degenerate configs stay sane too: cap below rto pins at rto.
        let tiny = retransmit_backoff(rto, Duration::from_millis(1), 50);
        assert_eq!(tiny, rto);
    }
}
