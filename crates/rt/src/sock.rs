//! Multi-process socket transport (DESIGN.md §13).
//!
//! [`RtTransport::Socket`] splits a world's pid space across separate OS
//! processes connected over TCP or a Unix-domain socket. One process is
//! the **parent** (hub): it binds the listener, validates the worker
//! handshake, routes frames between workers, and runs the same
//! coordinator phases as the in-proc runtime (client wait → quiescence
//! drain → shutdown → final collection). Each **worker** owns a
//! contiguous pid range and hosts those actors on OS threads exactly like
//! the threaded executor; envelopes leaving the range are serialized with
//! the binary frame codec (`core::wire::encode_frame`) and shipped
//! through the parent.
//!
//! The reliable sublayer ([`crate::net::Transport`]) and the chaos layer
//! run *inside each actor*, unchanged: the socket only replaces the
//! in-memory channel hop between two actors' transports, so per-link
//! sequencing, acks, retransmission, and fault injection all carry over
//! — and with them the chaos differential suite as the correctness
//! oracle for this transport.
//!
//! Wire protocol: every message is `u32le len | version | tag | body`
//! (little-endian length excludes itself; same `FRAME_VERSION` and size
//! cap as envelope frames). Handshake: each worker connects and sends
//! `Hello{index, workers, n, lo, hi}` claiming the pid range `lo..hi`;
//! the parent verifies the ranges tile `0..n` exactly and broadcasts
//! `Start`. Failure semantics: a connection that reaches EOF without a
//! prior `Bye` is a crashed worker — every pid it owned that has not
//! produced a final report is recorded as panicked ("worker connection
//! lost"). Malformed messages are treated as connection loss, never a
//! panic. Telemetry event streams are not shipped over the socket
//! (documented limitation): `RtResult::telemetry` is empty under this
//! transport.

use crate::core_poll::{ActorSpec, FinalReport, ProcessActor, Report};
use crate::net::{Delayer, Frame, Mailbox, Payload, Wire};
use crate::runtime::{drain_rounds, Coord, RtResult, RtStats, RtWorld, Step};
use crossbeam::channel::{unbounded, Receiver, Sender};
use opcsp_core::{
    decode_control_frame, decode_frame, encode_control_frame, encode_frame, get_value,
    parse_frame_len, put_uvarint, put_value, seal_frame_len, FrameError, FrameReader, ProcessId,
    Telemetry, FRAME_VERSION,
};
#[cfg(test)]
use opcsp_core::Value;
use opcsp_sim::{ObsKind, Observable};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Where the world's processes physically live (DESIGN.md §13).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtTransport {
    /// Every actor in this OS process, over in-memory channels (default).
    InProc,
    /// Pid space split across OS processes connected via `addr`.
    Socket { addr: SockAddr, role: SockRole },
}

/// A socket endpoint: TCP (`tcp:host:port`) or Unix-domain (`uds:/path`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SockAddr {
    Tcp(String),
    #[cfg(unix)]
    Uds(PathBuf),
}

impl SockAddr {
    /// Parse an endpoint spec. Explicit prefixes `tcp:` / `uds:` always
    /// win; a bare spec containing a `:` and no `/` is taken as TCP
    /// (`host:port`), anything else as a Unix-socket path.
    pub fn parse(s: &str) -> Result<SockAddr, String> {
        if let Some(rest) = s.strip_prefix("tcp:") {
            if rest.is_empty() {
                return Err("socket address: empty tcp endpoint".into());
            }
            return Ok(SockAddr::Tcp(rest.to_string()));
        }
        if let Some(rest) = s.strip_prefix("uds:") {
            return uds_addr(rest);
        }
        if s.is_empty() {
            return Err("socket address: empty endpoint".into());
        }
        if s.contains(':') && !s.contains('/') {
            Ok(SockAddr::Tcp(s.to_string()))
        } else {
            uds_addr(s)
        }
    }
}

#[cfg(unix)]
fn uds_addr(path: &str) -> Result<SockAddr, String> {
    if path.is_empty() {
        return Err("socket address: empty unix socket path".into());
    }
    Ok(SockAddr::Uds(PathBuf::from(path)))
}

#[cfg(not(unix))]
fn uds_addr(_path: &str) -> Result<SockAddr, String> {
    Err("socket address: unix sockets are not supported on this platform".into())
}

impl std::fmt::Display for SockAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SockAddr::Tcp(a) => write!(f, "tcp:{a}"),
            #[cfg(unix)]
            SockAddr::Uds(p) => write!(f, "uds:{}", p.display()),
        }
    }
}

/// Which side of the socket runtime this process plays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SockRole {
    /// Bind, accept `workers` connections, coordinate, and route.
    Parent { workers: usize },
    /// Connect and host pid range `index*n/workers .. (index+1)*n/workers`.
    Worker { index: usize, workers: usize },
}

// ---------------------------------------------------------------------------
// Streams and listeners (TCP | UDS unified)
// ---------------------------------------------------------------------------

enum SockStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Uds(UnixStream),
}

impl SockStream {
    fn connect(addr: &SockAddr) -> io::Result<SockStream> {
        match addr {
            SockAddr::Tcp(a) => {
                let s = TcpStream::connect(a)?;
                s.set_nodelay(true)?;
                Ok(SockStream::Tcp(s))
            }
            #[cfg(unix)]
            SockAddr::Uds(p) => Ok(SockStream::Uds(UnixStream::connect(p)?)),
        }
    }

    /// Connect with retry: the parent may not have bound yet when a
    /// spawned worker starts.
    fn connect_retry(addr: &SockAddr, budget: Duration) -> io::Result<SockStream> {
        let deadline = Instant::now() + budget;
        loop {
            match SockStream::connect(addr) {
                Ok(s) => return Ok(s),
                Err(e) if Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(25)),
            }
        }
    }

    fn try_clone(&self) -> io::Result<SockStream> {
        match self {
            SockStream::Tcp(s) => Ok(SockStream::Tcp(s.try_clone()?)),
            #[cfg(unix)]
            SockStream::Uds(s) => Ok(SockStream::Uds(s.try_clone()?)),
        }
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            SockStream::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            SockStream::Uds(s) => s.set_read_timeout(t),
        }
    }

    fn shutdown(&self) {
        match self {
            SockStream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            SockStream::Uds(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for SockStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            SockStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            SockStream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for SockStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            SockStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            SockStream::Uds(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            SockStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            SockStream::Uds(s) => s.flush(),
        }
    }
}

enum SockListener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds(UnixListener),
}

impl SockListener {
    fn bind(addr: &SockAddr) -> io::Result<SockListener> {
        match addr {
            SockAddr::Tcp(a) => Ok(SockListener::Tcp(TcpListener::bind(a)?)),
            #[cfg(unix)]
            SockAddr::Uds(p) => {
                // A stale socket file from a previous run blocks the bind.
                let _ = std::fs::remove_file(p);
                Ok(SockListener::Uds(UnixListener::bind(p)?))
            }
        }
    }

    fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            SockListener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            SockListener::Uds(l) => l.set_nonblocking(nb),
        }
    }

    /// Accept one connection, polling until `deadline`.
    fn accept_deadline(&self, deadline: Instant) -> io::Result<SockStream> {
        self.set_nonblocking(true)?;
        loop {
            let got = match self {
                SockListener::Tcp(l) => l.accept().map(|(s, _)| {
                    let _ = s.set_nodelay(true);
                    SockStream::Tcp(s)
                }),
                #[cfg(unix)]
                SockListener::Uds(l) => l.accept().map(|(s, _)| SockStream::Uds(s)),
            };
            match got {
                Ok(s) => {
                    self.set_nonblocking(false)?;
                    // The stream inherits the listener's nonblocking flag
                    // on some platforms; force it off.
                    match &s {
                        SockStream::Tcp(t) => t.set_nonblocking(false)?,
                        #[cfg(unix)]
                        SockStream::Uds(u) => u.set_nonblocking(false)?,
                    }
                    return Ok(s);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "no worker connected before the deadline",
                        ));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Socket message codec
// ---------------------------------------------------------------------------

/// Everything that crosses a parent↔worker connection.
#[derive(Debug, PartialEq)]
enum SockMsg {
    /// Worker → parent: claim pid range `lo..hi` of an `n`-process world.
    Hello {
        index: u64,
        workers: u64,
        n: u64,
        lo: u64,
        hi: u64,
    },
    /// Parent → workers: handshake complete, start the actors.
    Start,
    /// A reliable-sublayer frame in either direction (worker → parent →
    /// owning worker).
    Net(Frame),
    /// Parent → workers: quiescence probe round; fan out locally.
    Probe(u64),
    /// Parent → workers: halt, finalize, report.
    Shutdown,
    /// Worker → parent: a coordinator report from a local actor.
    Report(Report),
    /// Worker → parent: clean goodbye; EOF after this is not a crash.
    Bye,
}

const TAG_HELLO: u8 = 0;
const TAG_START: u8 = 1;
const TAG_NET: u8 = 2;
const TAG_PROBE: u8 = 3;
const TAG_SHUTDOWN: u8 = 4;
const TAG_REPORT: u8 = 5;
const TAG_BYE: u8 = 6;

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_uvarint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn get_str(r: &mut FrameReader<'_>) -> Result<String, FrameError> {
    let len = r.uv32("string length")? as usize;
    let bytes = r.take(len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::BadUtf8)
}

fn put_pid(buf: &mut Vec<u8>, p: ProcessId) {
    put_uvarint(buf, p.0 as u64);
}

fn get_pid(r: &mut FrameReader<'_>) -> Result<ProcessId, FrameError> {
    Ok(ProcessId(r.uv32("process id")?))
}

fn put_observable(buf: &mut Vec<u8>, o: &Observable) {
    let kind_byte = |k: &ObsKind| match k {
        ObsKind::Send => 0u8,
        ObsKind::Call => 1,
        ObsKind::Return => 2,
    };
    match o {
        Observable::Sent { to, kind, payload } => {
            buf.push(0);
            put_pid(buf, *to);
            buf.push(kind_byte(kind));
            put_value(buf, payload);
        }
        Observable::Received {
            from,
            kind,
            payload,
        } => {
            buf.push(1);
            put_pid(buf, *from);
            buf.push(kind_byte(kind));
            put_value(buf, payload);
        }
        Observable::Output { payload } => {
            buf.push(2);
            put_value(buf, payload);
        }
    }
}

fn get_observable(r: &mut FrameReader<'_>) -> Result<Observable, FrameError> {
    let get_kind = |r: &mut FrameReader<'_>| -> Result<ObsKind, FrameError> {
        match r.u8()? {
            0 => Ok(ObsKind::Send),
            1 => Ok(ObsKind::Call),
            2 => Ok(ObsKind::Return),
            tag => Err(FrameError::BadTag {
                what: "observable kind",
                tag,
            }),
        }
    };
    match r.u8()? {
        0 => Ok(Observable::Sent {
            to: get_pid(r)?,
            kind: get_kind(r)?,
            payload: get_value(r)?,
        }),
        1 => Ok(Observable::Received {
            from: get_pid(r)?,
            kind: get_kind(r)?,
            payload: get_value(r)?,
        }),
        2 => Ok(Observable::Output {
            payload: get_value(r)?,
        }),
        tag => Err(FrameError::BadTag {
            what: "observable",
            tag,
        }),
    }
}

/// The 24 counters of an [`RtStats`], as uvarints in a fixed order.
fn put_stats(buf: &mut Vec<u8>, s: &RtStats) {
    let fields = [
        s.proto.forks,
        s.proto.commits,
        s.proto.aborts,
        s.proto.rollbacks,
        s.proto.discarded_threads,
        s.proto.orphans,
        s.proto.data_messages,
        s.proto.control_messages,
        s.proto.guard_bytes,
        s.proto.table_bytes,
        s.proto.wire.compact_sends,
        s.proto.wire.full_fallbacks,
        s.proto.wire.rows_sent,
        s.proto.wire.acks_sent,
        s.proto.wire.rows_merged,
        s.proto.interner.hits,
        s.proto.interner.misses,
        s.proto.interner.purged,
        s.proto.interner.live,
        s.drops_injected,
        s.dups_injected,
        s.retransmits,
        s.acks,
        s.reorder_releases,
    ];
    for f in fields {
        put_uvarint(buf, f);
    }
}

fn get_stats(r: &mut FrameReader<'_>) -> Result<RtStats, FrameError> {
    let mut s = RtStats::default();
    let mut uv = || r.uv();
    s.proto.forks = uv()?;
    s.proto.commits = uv()?;
    s.proto.aborts = uv()?;
    s.proto.rollbacks = uv()?;
    s.proto.discarded_threads = uv()?;
    s.proto.orphans = uv()?;
    s.proto.data_messages = uv()?;
    s.proto.control_messages = uv()?;
    s.proto.guard_bytes = uv()?;
    s.proto.table_bytes = uv()?;
    s.proto.wire.compact_sends = uv()?;
    s.proto.wire.full_fallbacks = uv()?;
    s.proto.wire.rows_sent = uv()?;
    s.proto.wire.acks_sent = uv()?;
    s.proto.wire.rows_merged = uv()?;
    s.proto.interner.hits = uv()?;
    s.proto.interner.misses = uv()?;
    s.proto.interner.purged = uv()?;
    s.proto.interner.live = uv()?;
    s.drops_injected = uv()?;
    s.dups_injected = uv()?;
    s.retransmits = uv()?;
    s.acks = uv()?;
    s.reorder_releases = uv()?;
    Ok(s)
}

fn encode_msg(m: &SockMsg) -> Vec<u8> {
    let mut buf = vec![0, 0, 0, 0, FRAME_VERSION];
    match m {
        SockMsg::Hello {
            index,
            workers,
            n,
            lo,
            hi,
        } => {
            buf.push(TAG_HELLO);
            for v in [*index, *workers, *n, *lo, *hi] {
                put_uvarint(&mut buf, v);
            }
        }
        SockMsg::Start => buf.push(TAG_START),
        SockMsg::Net(f) => {
            buf.push(TAG_NET);
            put_pid(&mut buf, f.from);
            put_pid(&mut buf, f.to);
            put_uvarint(&mut buf, f.ack);
            match &f.msg {
                None => buf.push(0),
                Some((seq, payload)) => {
                    buf.push(1);
                    put_uvarint(&mut buf, *seq);
                    // The payload rides as a complete nested envelope /
                    // control frame — the codec fuzzed in
                    // `core/tests/frame_codec.rs` is the codec on this
                    // wire.
                    match payload {
                        Payload::Data(e) => {
                            buf.push(0);
                            buf.extend_from_slice(&encode_frame(e));
                        }
                        Payload::Ctrl(c) => {
                            buf.push(1);
                            buf.extend_from_slice(&encode_control_frame(c));
                        }
                    }
                }
            }
        }
        SockMsg::Probe(round) => {
            buf.push(TAG_PROBE);
            put_uvarint(&mut buf, *round);
        }
        SockMsg::Shutdown => buf.push(TAG_SHUTDOWN),
        SockMsg::Report(r) => {
            buf.push(TAG_REPORT);
            match r {
                Report::ClientDone(pid) => {
                    buf.push(0);
                    put_pid(&mut buf, *pid);
                }
                Report::Quiet {
                    pid,
                    round,
                    sent,
                    delivered,
                    unacked,
                } => {
                    buf.push(1);
                    put_pid(&mut buf, *pid);
                    for v in [*round, *sent, *delivered, *unacked] {
                        put_uvarint(&mut buf, v);
                    }
                }
                Report::Panicked { pid, msg } => {
                    buf.push(2);
                    put_pid(&mut buf, *pid);
                    put_str(&mut buf, msg);
                }
                Report::Final(f) => {
                    buf.push(3);
                    put_pid(&mut buf, f.pid);
                    put_stats(&mut buf, &f.stats);
                    put_uvarint(&mut buf, f.log.len() as u64);
                    for o in &f.log {
                        put_observable(&mut buf, o);
                    }
                    put_uvarint(&mut buf, f.external.len() as u64);
                    for v in &f.external {
                        put_value(&mut buf, v);
                    }
                    // Telemetry events deliberately not shipped (module
                    // doc): `f.events` stays local to the worker.
                }
            }
        }
        SockMsg::Bye => buf.push(TAG_BYE),
    }
    seal_frame_len(&mut buf);
    buf
}

/// Decode one length-stripped message body (`version | tag | body`).
/// Untrusted input: every claimed count is bounds-checked against the
/// remaining bytes by the readers, so a hostile length never allocates.
fn decode_msg(body: &[u8]) -> Result<SockMsg, FrameError> {
    let mut r = FrameReader::new(body);
    let version = r.u8()?;
    if version != FRAME_VERSION {
        return Err(FrameError::UnknownVersion(version));
    }
    let tag = r.u8()?;
    let msg = match tag {
        TAG_HELLO => SockMsg::Hello {
            index: r.uv()?,
            workers: r.uv()?,
            n: r.uv()?,
            lo: r.uv()?,
            hi: r.uv()?,
        },
        TAG_START => SockMsg::Start,
        TAG_NET => {
            let from = get_pid(&mut r)?;
            let to = get_pid(&mut r)?;
            let ack = r.uv()?;
            let msg = match r.u8()? {
                0 => None,
                1 => {
                    let seq = r.uv()?;
                    let payload = match r.u8()? {
                        0 => {
                            let (e, used) = decode_frame(r.tail())?;
                            r.advance(used)?;
                            Payload::Data(e)
                        }
                        1 => {
                            let (c, used) = decode_control_frame(r.tail())?;
                            r.advance(used)?;
                            Payload::Ctrl(c)
                        }
                        tag => {
                            return Err(FrameError::BadTag {
                                what: "net payload",
                                tag,
                            })
                        }
                    };
                    Some((seq, payload))
                }
                tag => {
                    return Err(FrameError::BadTag {
                        what: "net msg flag",
                        tag,
                    })
                }
            };
            SockMsg::Net(Frame { from, to, ack, msg })
        }
        TAG_PROBE => SockMsg::Probe(r.uv()?),
        TAG_SHUTDOWN => SockMsg::Shutdown,
        TAG_REPORT => {
            let rtag = r.u8()?;
            let report = match rtag {
                0 => Report::ClientDone(get_pid(&mut r)?),
                1 => Report::Quiet {
                    pid: get_pid(&mut r)?,
                    round: r.uv()?,
                    sent: r.uv()?,
                    delivered: r.uv()?,
                    unacked: r.uv()?,
                },
                2 => Report::Panicked {
                    pid: get_pid(&mut r)?,
                    msg: get_str(&mut r)?,
                },
                3 => {
                    let pid = get_pid(&mut r)?;
                    let stats = get_stats(&mut r)?;
                    let nlog = r.uv32("log length")? as usize;
                    let mut log = Vec::new();
                    for _ in 0..nlog {
                        log.push(get_observable(&mut r)?);
                    }
                    let next = r.uv32("external length")? as usize;
                    let mut external = Vec::new();
                    for _ in 0..next {
                        external.push(get_value(&mut r)?);
                    }
                    Report::Final(Box::new(FinalReport {
                        pid,
                        stats,
                        log,
                        external,
                        events: Vec::new(),
                    }))
                }
                tag => {
                    return Err(FrameError::BadTag {
                        what: "report",
                        tag,
                    })
                }
            };
            SockMsg::Report(report)
        }
        TAG_BYE => SockMsg::Bye,
        tag => {
            return Err(FrameError::BadTag {
                what: "socket message",
                tag,
            })
        }
    };
    if r.remaining() > 0 {
        return Err(FrameError::TrailingBytes {
            extra: r.remaining(),
        });
    }
    Ok(msg)
}

/// Read one message. `Ok(None)` is a clean EOF *between* messages; EOF
/// mid-message and malformed bodies are errors (connection loss).
fn read_msg(stream: &mut SockStream) -> io::Result<Option<SockMsg>> {
    let mut len_bytes = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match stream.read(&mut len_bytes[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside a message header",
                ))
            }
            Ok(k) => got += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    // The 16 MiB cap and the zero-length rejection come from the shared
    // header parser — one policy for every length prefix on any wire.
    let len = parse_frame_len(len_bytes)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    decode_msg(&body)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

fn write_msg(stream: &Arc<Mutex<SockStream>>, m: &SockMsg) -> io::Result<()> {
    let bytes = encode_msg(m);
    let mut s = stream.lock().unwrap_or_else(|p| p.into_inner());
    s.write_all(&bytes)?;
    s.flush()
}

/// Pid range owned by worker `index` of `workers`: contiguous tiles so
/// the parent can validate coverage of `0..n` by simple concatenation.
fn worker_range(index: usize, workers: usize, n: usize) -> (usize, usize) {
    (index * n / workers, (index + 1) * n / workers)
}

// ---------------------------------------------------------------------------
// Entry
// ---------------------------------------------------------------------------

/// Run a socket-transport world. Dispatched from [`RtWorld::run`].
pub(crate) fn run_socket(world: RtWorld, addr: SockAddr, role: SockRole) -> RtResult {
    match role {
        SockRole::Parent { workers } => run_parent(world, &addr, workers),
        SockRole::Worker { index, workers } => run_worker(world, &addr, index, workers),
    }
}

fn empty_result(start: Instant, timed_out: bool) -> RtResult {
    RtResult {
        wall: start.elapsed(),
        stats: RtStats::default(),
        logs: BTreeMap::new(),
        external: Vec::new(),
        timed_out,
        panicked: Vec::new(),
        panics: BTreeMap::new(),
        stragglers: Vec::new(),
        telemetry: Telemetry::new(false),
    }
}

// ---------------------------------------------------------------------------
// Parent (hub)
// ---------------------------------------------------------------------------

/// Per-connection reader shared state the parent consults after the run.
struct ConnState {
    /// Pids whose `Final` or `Panicked` already crossed this connection —
    /// an EOF-without-`Bye` must not re-report those as crashed.
    reported: Mutex<BTreeSet<ProcessId>>,
    saw_bye: std::sync::atomic::AtomicBool,
}

fn run_parent(world: RtWorld, addr: &SockAddr, workers: usize) -> RtResult {
    let n = world.behaviors.len();
    let cfg = world.cfg;
    let start = Instant::now();
    let deadline = start + cfg.run_timeout;
    let workers = workers.max(1).min(n.max(1));

    let listener = match SockListener::bind(addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("rt::sock parent: bind {addr}: {e}");
            return empty_result(start, true);
        }
    };

    // Handshake: accept every worker, read its Hello, and check that the
    // claimed ranges tile 0..n exactly — a version-skewed or misnumbered
    // worker is caught here, before any actor runs. A connection that dies
    // mid-handshake (EOF, I/O error, or garbage before a well-formed
    // Hello) is a crashed *worker*, not a lost world: its slot stays
    // empty, the pid range it would have owned is attributed as panicked
    // below, and the surviving workers still run and drain to quiescence.
    let mut conns: Vec<Option<SockStream>> = (0..workers).map(|_| None).collect();
    let mut accepted = 0usize;
    while accepted < workers {
        let mut s = match listener.accept_deadline(deadline) {
            Ok(s) => s,
            Err(e) => {
                // A worker died before it ever connected: stop waiting and
                // attribute every still-unclaimed slot.
                eprintln!("rt::sock parent: accept: {e}");
                break;
            }
        };
        accepted += 1;
        let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
        let hello = read_msg(&mut s);
        let _ = s.set_read_timeout(None);
        match hello {
            Ok(Some(SockMsg::Hello {
                index,
                workers: w,
                n: wn,
                lo,
                hi,
            })) => {
                let idx = index as usize;
                let (want_lo, want_hi) = worker_range(idx, workers, n);
                let ok = w as usize == workers
                    && wn as usize == n
                    && idx < workers
                    && lo as usize == want_lo
                    && hi as usize == want_hi
                    && conns[idx.min(workers - 1)].is_none();
                if !ok {
                    // A well-formed but *wrong* Hello is config/version
                    // skew, not a crash: every worker was launched from
                    // the same spec, so the whole world is suspect.
                    eprintln!(
                        "rt::sock parent: bad hello (index {index}, workers {w}, n {wn}, \
                         range {lo}..{hi}; expected workers {workers}, n {n}, \
                         range {want_lo}..{want_hi})"
                    );
                    return empty_result(start, true);
                }
                conns[idx] = Some(s);
            }
            other => {
                eprintln!(
                    "rt::sock parent: worker connection lost during handshake \
                     (expected hello, got {other:?})"
                );
            }
        }
    }

    // pid → owning connection index, derived from the contiguous tiling.
    let owner: Vec<usize> = (0..workers)
        .flat_map(|w| {
            let (lo, hi) = worker_range(w, workers, n);
            std::iter::repeat_n(w, hi - lo)
        })
        .collect();

    // Split every live connection into a shared writer half and a reader
    // half *before* spawning any reader: a reader routes frames to
    // arbitrary sibling writers, so it must capture the complete table.
    // Dead slots stay `None` — frames routed to them are dropped (their
    // owners are dead), and their pid ranges are attributed right below.
    let (report_tx, report_rx) = unbounded::<Report>();
    let mut writers: Vec<Option<Arc<Mutex<SockStream>>>> = Vec::with_capacity(workers);
    let mut reader_streams: Vec<Option<SockStream>> = Vec::with_capacity(workers);
    for (w, conn) in conns.into_iter().enumerate() {
        let Some(conn) = conn else {
            writers.push(None);
            reader_streams.push(None);
            continue;
        };
        match conn.try_clone() {
            Ok(r) => {
                reader_streams.push(Some(r));
                writers.push(Some(Arc::new(Mutex::new(conn))));
            }
            Err(e) => {
                eprintln!("rt::sock parent: clone conn {w}: {e} (treating worker as lost)");
                reader_streams.push(None);
                writers.push(None);
            }
        }
    }
    for (w, wr) in writers.iter().enumerate() {
        if wr.is_none() {
            let (lo, hi) = worker_range(w, workers, n);
            for pid in lo..hi {
                let _ = report_tx.send(Report::Panicked {
                    pid: ProcessId(pid as u32),
                    msg: format!("worker connection {w} lost during handshake"),
                });
            }
        }
    }
    let mut states: Vec<Option<Arc<ConnState>>> = Vec::with_capacity(workers);
    let mut readers: Vec<(usize, std::thread::JoinHandle<()>)> = Vec::with_capacity(workers);
    for (w, reader) in reader_streams.into_iter().enumerate() {
        let Some(reader) = reader else {
            states.push(None);
            continue;
        };
        let state = Arc::new(ConnState {
            reported: Mutex::new(BTreeSet::new()),
            saw_bye: std::sync::atomic::AtomicBool::new(false),
        });
        states.push(Some(state.clone()));
        let owner = owner.clone();
        let all_writers = writers.clone();
        let tx = report_tx.clone();
        let (lo, hi) = worker_range(w, workers, n);
        readers.push((
            w,
            std::thread::Builder::new()
                .name(format!("opcsp-sock-conn-{w}"))
                .spawn(move || {
                    parent_reader(reader, w, owner, all_writers, tx, state, lo, hi)
                })
                .expect("spawn parent reader"),
        ));
    }
    drop(report_tx);

    for (w, wr) in writers.iter().enumerate() {
        let Some(wr) = wr else { continue };
        if let Err(e) = write_msg(wr, &SockMsg::Start) {
            // The connection broke between the handshake and Start: the
            // reader thread sees the same EOF and attributes the range.
            eprintln!("rt::sock parent: start conn {w}: {e}");
        }
    }

    // Phase 1 — wait for every client (same criterion as in-proc).
    let clients: BTreeSet<ProcessId> = world
        .is_client
        .iter()
        .enumerate()
        .filter(|(_, c)| **c)
        .map(|(i, _)| ProcessId(i as u32))
        .collect();
    let mut coord = Coord::new(report_rx);
    let mut waiting = clients;
    let mut timed_out = false;
    let mut all_dead = false;
    while !waiting.is_empty() {
        // A dead client will never report done — waiting for it would
        // stall the whole run until `run_timeout`.
        waiting.retain(|p| !coord.dead.contains(p));
        if waiting.is_empty() {
            break;
        }
        // Wait in short slices: deaths are absorbed silently inside
        // `recv_deadline`, so if every remaining client just died and no
        // further report is coming, a full-deadline wait would stall here.
        let slice = (Instant::now() + Duration::from_millis(50)).min(deadline);
        match coord.recv_deadline(slice) {
            Step::Got(Report::ClientDone(pid)) => {
                waiting.remove(&pid);
            }
            Step::Got(_) => {}
            Step::DeadlineHit => {
                if Instant::now() >= deadline {
                    timed_out = true;
                    break;
                }
            }
            Step::AllExited => {
                all_dead = true;
                break;
            }
        }
    }

    // Phase 2 — drain to quiescence: probe frames go to the worker
    // connections; each worker fans the round out to its local actors.
    if !timed_out && !all_dead {
        let quiesced = drain_rounds(
            &mut coord,
            deadline,
            |dead| (0..n).filter(|i| !dead.contains(&ProcessId(*i as u32))).collect(),
            |round, _live| {
                for wr in writers.iter().flatten() {
                    let _ = write_msg(wr, &SockMsg::Probe(round));
                }
            },
        );
        if !quiesced {
            timed_out = true;
        }
    }

    for wr in writers.iter().flatten() {
        let _ = write_msg(wr, &SockMsg::Shutdown);
    }

    // Phase 3 — collect finals, same budget derivation as in-proc.
    let join_budget = (cfg.run_timeout / 8)
        .max(Duration::from_millis(100))
        .min(Duration::from_secs(5));
    let collect_deadline = Instant::now() + join_budget;
    let mut stats = RtStats::default();
    let mut logs = BTreeMap::new();
    let mut external = Vec::new();
    let mut finals = 0;
    while finals < n - coord.dead.len() {
        match coord.recv_deadline(collect_deadline) {
            Step::Got(Report::Final(f)) => {
                stats.merge(&f.stats);
                logs.insert(f.pid, f.log);
                for v in f.external {
                    external.push((f.pid, v));
                }
                finals += 1;
            }
            Step::Got(_) => {}
            Step::DeadlineHit | Step::AllExited => break,
        }
    }

    // Phase 4 — reap reader threads (they exit on Bye or EOF); a wedged
    // connection is detached, and its unreported pids become stragglers.
    for (w, h) in readers {
        while !h.is_finished() && Instant::now() < collect_deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        if h.is_finished() {
            let _ = h.join();
        } else {
            if let Some(state) = &states[w] {
                state.saw_bye.store(true, std::sync::atomic::Ordering::Relaxed);
            }
            if let Some(wr) = &writers[w] {
                wr.lock().unwrap_or_else(|p| p.into_inner()).shutdown();
            }
        }
    }
    let mut stragglers = Vec::new();
    for i in 0..n {
        let pid = ProcessId(i as u32);
        if !logs.contains_key(&pid) && !coord.dead.contains(&pid) {
            stragglers.push(pid);
        }
    }
    #[cfg(unix)]
    if let SockAddr::Uds(p) = addr {
        let _ = std::fs::remove_file(p);
    }

    RtResult {
        wall: start.elapsed(),
        stats,
        logs,
        external,
        timed_out,
        panicked: coord.dead.into_iter().collect(),
        panics: coord.panics,
        stragglers,
        telemetry: Telemetry::new(false),
    }
}

/// One parent-side connection reader: routes frames to owners, forwards
/// reports, and converts an EOF-without-Bye into synthetic panics for the
/// connection's unreported pids.
#[allow(clippy::too_many_arguments)]
fn parent_reader(
    mut stream: SockStream,
    conn_index: usize,
    owner: Vec<usize>,
    writers: Vec<Option<Arc<Mutex<SockStream>>>>,
    report: Sender<Report>,
    state: Arc<ConnState>,
    lo: usize,
    hi: usize,
) {
    loop {
        match read_msg(&mut stream) {
            Ok(Some(SockMsg::Net(f))) => {
                let Some(w) = owner.get(f.to.0 as usize) else {
                    continue; // out-of-range target: drop, never panic
                };
                // A `None` writer is a worker lost during the handshake:
                // frames routed to its pids are dropped, not a panic.
                if let Some(wr) = writers.get(*w).and_then(|o| o.as_ref()) {
                    let _ = write_msg(wr, &SockMsg::Net(f));
                }
            }
            Ok(Some(SockMsg::Report(r))) => {
                match &r {
                    Report::Final(f) => {
                        state
                            .reported
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .insert(f.pid);
                    }
                    Report::Panicked { pid, .. } => {
                        state
                            .reported
                            .lock()
                            .unwrap_or_else(|p| p.into_inner())
                            .insert(*pid);
                    }
                    _ => {}
                }
                if report.send(r).is_err() {
                    break;
                }
            }
            Ok(Some(SockMsg::Bye)) => {
                state
                    .saw_bye
                    .store(true, std::sync::atomic::Ordering::Relaxed);
                break;
            }
            Ok(Some(_)) => {} // Hello/Start/Probe/Shutdown: not parent-bound
            Ok(None) | Err(_) => break,
        }
    }
    if !state.saw_bye.load(std::sync::atomic::Ordering::Relaxed) {
        // Worker crashed (or the link did): every owned pid that never
        // reported is gone with it.
        let reported = state
            .reported
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone();
        for pid in lo..hi {
            let pid = ProcessId(pid as u32);
            if !reported.contains(&pid) {
                let _ = report.send(Report::Panicked {
                    pid,
                    msg: format!("worker connection {conn_index} lost"),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Worker
// ---------------------------------------------------------------------------

fn run_worker(world: RtWorld, addr: &SockAddr, index: usize, workers: usize) -> RtResult {
    let n = world.behaviors.len();
    let cfg = Arc::new(world.cfg);
    let start = Instant::now();
    let workers = workers.max(1).min(n.max(1));
    if index >= workers {
        // A worker index beyond the (pid-clamped) worker count owns no
        // pids; nothing to host.
        return empty_result(start, false);
    }
    let (lo, hi) = worker_range(index, workers, n);

    let mut stream = match SockStream::connect_retry(addr, Duration::from_secs(10)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rt::sock worker {index}: connect {addr}: {e}");
            return empty_result(start, true);
        }
    };
    let writer = Arc::new(Mutex::new(match stream.try_clone() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("rt::sock worker {index}: clone: {e}");
            return empty_result(start, true);
        }
    }));
    if let Err(e) = write_msg(
        &writer,
        &SockMsg::Hello {
            index: index as u64,
            workers: workers as u64,
            n: n as u64,
            lo: lo as u64,
            hi: hi as u64,
        },
    ) {
        eprintln!("rt::sock worker {index}: hello: {e}");
        return empty_result(start, true);
    }

    // Mailbox table: local pids get direct channels, remote pids feed the
    // socket-writer pump. Built before Start so frames arriving during
    // the handshake race just queue in the local channels.
    let (frames_tx, frames_rx) = unbounded::<Frame>();
    let mut receivers: Vec<Option<Receiver<Wire>>> = Vec::with_capacity(n);
    let net: Arc<Vec<Mailbox>> = Arc::new(
        (0..n)
            .map(|i| {
                if i >= lo && i < hi {
                    let (tx, rx) = unbounded::<Wire>();
                    receivers.push(Some(rx));
                    Mailbox::Direct(tx)
                } else {
                    receivers.push(None);
                    Mailbox::Remote(frames_tx.clone())
                }
            })
            .collect(),
    );
    drop(frames_tx);

    // Handshake: deliver any early frames, wait for Start.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    loop {
        match read_msg(&mut stream) {
            Ok(Some(SockMsg::Start)) => break,
            Ok(Some(SockMsg::Net(f))) => {
                let to = f.to.0 as usize;
                if to < n {
                    let _ = net[to].send(Wire::Frame(f));
                }
            }
            Ok(Some(SockMsg::Shutdown)) | Ok(None) => return empty_result(start, false),
            Ok(Some(_)) => {}
            Err(e) => {
                eprintln!("rt::sock worker {index}: handshake: {e}");
                return empty_result(start, true);
            }
        }
    }
    let _ = stream.set_read_timeout(None);

    // Run start for latency/timer purposes is *this* worker's Start
    // receipt; absolute cross-worker timestamps are never compared.
    let run_start = Instant::now();
    let delayer: Arc<Delayer<Wire>> = Arc::new(Delayer::spawn());
    let (report_tx, report_rx) = unbounded::<Report>();

    // Worker-disjoint id spaces: message/call ids must be unique across
    // the whole world, and workers cannot share an atomic. 2^48 ids per
    // worker is unreachable in any real run.
    let msg_ids = Arc::new(AtomicU64::new(((index + 1) as u64) << 48));
    let call_ids = Arc::new(AtomicU64::new(((index + 1) as u64) << 48));

    let mut handles = Vec::with_capacity(hi - lo);
    // `pid` indexes three parallel world tables at once; a zip would
    // obscure that they share one index space.
    #[allow(clippy::needless_range_loop)]
    for pid in lo..hi {
        let spec = ActorSpec {
            pid: ProcessId(pid as u32),
            behavior: world.behaviors[pid].clone(),
            is_client: world.is_client[pid],
            cfg: cfg.clone(),
            net: net.clone(),
            delayer: delayer.clone(),
            report: report_tx.clone(),
            start: run_start,
            msg_ids: msg_ids.clone(),
            call_ids: call_ids.clone(),
            self_ticks: true,
        };
        let rx = receivers[pid].take().expect("local pid has a receiver");
        let report = report_tx.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("opcsp-sock-{pid}"))
                .spawn(move || {
                    let p = ProcessId(pid as u32);
                    let r = catch_unwind(AssertUnwindSafe(move || {
                        let mut actor = ProcessActor::new(spec);
                        actor.start();
                        loop {
                            match rx.recv() {
                                Ok(Wire::Shutdown) | Err(_) => break,
                                Ok(w) => actor.on_wire(w),
                            }
                        }
                        actor.finalize();
                    }));
                    if let Err(payload) = r {
                        let _ = report.send(Report::Panicked {
                            pid: p,
                            msg: crate::executor::panic_message(payload.as_ref()),
                        });
                    }
                })
                .expect("spawn socket actor"),
        );
    }
    drop(report_tx);

    // Frames pump: remote-bound frames → socket. Exits when every
    // `Mailbox::Remote` sender clone is gone (actors joined, delayer
    // flushed, net table dropped below).
    let frames_pump = {
        let writer = writer.clone();
        std::thread::Builder::new()
            .name(format!("opcsp-sock-frames-{index}"))
            .spawn(move || {
                while let Ok(f) = frames_rx.recv() {
                    if write_msg(&writer, &SockMsg::Net(f)).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn frames pump")
    };
    // Report pump: local coordinator reports → socket.
    let report_pump = {
        let writer = writer.clone();
        std::thread::Builder::new()
            .name(format!("opcsp-sock-reports-{index}"))
            .spawn(move || {
                while let Ok(r) = report_rx.recv() {
                    if write_msg(&writer, &SockMsg::Report(r)).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn report pump")
    };

    // Main loop: demultiplex parent traffic into local mailboxes.
    loop {
        match read_msg(&mut stream) {
            Ok(Some(SockMsg::Net(f))) => {
                let to = f.to.0 as usize;
                if to < n {
                    let _ = net[to].send(Wire::Frame(f));
                }
            }
            Ok(Some(SockMsg::Probe(round))) => {
                for pid in lo..hi {
                    let _ = net[pid].send(Wire::Probe(round));
                }
            }
            Ok(Some(SockMsg::Shutdown)) => break,
            Ok(Some(_)) => {}
            Ok(None) => break,
            Err(e) => {
                eprintln!("rt::sock worker {index}: read: {e}");
                break;
            }
        }
    }

    // Teardown, in dependency order: halt actors, join them, let the
    // delayer flush (its Drop delivers pending data frames into the
    // mailboxes), drop the mailbox table so the frames pump drains and
    // exits, then close the report pump and say goodbye.
    for pid in lo..hi {
        let _ = net[pid].send(Wire::Shutdown);
    }
    let join_budget = (cfg.run_timeout / 8)
        .max(Duration::from_millis(100))
        .min(Duration::from_secs(5));
    let join_deadline = Instant::now() + join_budget;
    for h in handles {
        while !h.is_finished() && Instant::now() < join_deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        if h.is_finished() {
            let _ = h.join();
        }
        // A wedged actor is detached; the parent records the straggler.
    }
    drop(delayer);
    drop(net);
    while !frames_pump.is_finished() && Instant::now() < join_deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    if frames_pump.is_finished() {
        let _ = frames_pump.join();
    }
    while !report_pump.is_finished() && Instant::now() < join_deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    if report_pump.is_finished() {
        let _ = report_pump.join();
    }
    let _ = write_msg(&writer, &SockMsg::Bye);
    writer.lock().unwrap_or_else(|p| p.into_inner()).shutdown();

    // The authoritative RtResult is assembled by the parent; the worker
    // reports only whether its own machinery wound down cleanly.
    empty_result(start, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opcsp_core::{DataKind, Envelope, Guard, MsgId, WireGuard};

    fn envelope() -> Envelope {
        Envelope {
            id: MsgId(7),
            from: ProcessId(1),
            from_thread: 0,
            to: ProcessId(2),
            guard: WireGuard::Full(Guard::empty()),
            table_acks: Vec::new(),
            kind: DataKind::Send,
            payload: Value::Str("hi".into()),
            label: "C1".into(),
            link_seq: 4,
        }
    }

    fn roundtrip(m: &SockMsg) -> SockMsg {
        let bytes = encode_msg(m);
        let len = parse_frame_len(bytes[..4].try_into().unwrap()).expect("valid length prefix");
        assert_eq!(len, bytes.len() - 4, "length prefix covers the body");
        decode_msg(&bytes[4..]).expect("decode")
    }

    #[test]
    fn control_messages_roundtrip() {
        for m in [
            SockMsg::Hello {
                index: 1,
                workers: 2,
                n: 17,
                lo: 8,
                hi: 17,
            },
            SockMsg::Start,
            SockMsg::Probe(41),
            SockMsg::Shutdown,
            SockMsg::Bye,
        ] {
            assert_eq!(roundtrip(&m), m);
        }
    }

    #[test]
    fn net_frames_roundtrip() {
        let ack_only = SockMsg::Net(Frame {
            from: ProcessId(3),
            to: ProcessId(0),
            ack: 12,
            msg: None,
        });
        assert_eq!(roundtrip(&ack_only), ack_only);
        let data = SockMsg::Net(Frame {
            from: ProcessId(0),
            to: ProcessId(3),
            ack: 2,
            msg: Some((9, Payload::Data(envelope()))),
        });
        assert_eq!(roundtrip(&data), data);
    }

    #[test]
    fn reports_roundtrip() {
        let mut stats = RtStats::default();
        stats.proto.forks = 5;
        stats.proto.wire.rows_sent = 11;
        stats.proto.interner.hits = 3;
        stats.retransmits = 2;
        let fin = SockMsg::Report(Report::Final(Box::new(FinalReport {
            pid: ProcessId(4),
            stats,
            log: vec![
                Observable::Sent {
                    to: ProcessId(1),
                    kind: ObsKind::Call,
                    payload: Value::Int(-3),
                },
                Observable::Received {
                    from: ProcessId(1),
                    kind: ObsKind::Return,
                    payload: Value::Unit,
                },
                Observable::Output {
                    payload: Value::Str("out".into()),
                },
            ],
            external: vec![Value::Int(9), Value::Bool(true)],
            events: Vec::new(),
        })));
        match (roundtrip(&fin), fin) {
            (SockMsg::Report(Report::Final(a)), SockMsg::Report(Report::Final(b))) => {
                assert_eq!(a.pid, b.pid);
                assert_eq!(a.stats, b.stats);
                assert_eq!(a.log, b.log);
                assert_eq!(a.external, b.external);
            }
            other => panic!("unexpected roundtrip shape: {other:?}"),
        }
        for m in [
            SockMsg::Report(Report::ClientDone(ProcessId(2))),
            SockMsg::Report(Report::Quiet {
                pid: ProcessId(1),
                round: 3,
                sent: 10,
                delivered: 9,
                unacked: 1,
            }),
            SockMsg::Report(Report::Panicked {
                pid: ProcessId(0),
                msg: "boom".into(),
            }),
        ] {
            assert_eq!(roundtrip(&m), m);
        }
    }

    #[test]
    fn truncated_and_garbage_messages_are_clean_errors() {
        let bytes = encode_msg(&SockMsg::Net(Frame {
            from: ProcessId(0),
            to: ProcessId(3),
            ack: 2,
            msg: Some((9, Payload::Data(envelope()))),
        }));
        let body = &bytes[4..];
        for cut in 0..body.len() {
            assert!(
                decode_msg(&body[..cut]).is_err(),
                "prefix of len {cut} must not decode"
            );
        }
        assert!(matches!(
            decode_msg(&[FRAME_VERSION, 250]),
            Err(FrameError::BadTag { .. })
        ));
        assert!(matches!(
            decode_msg(&[9, TAG_START]),
            Err(FrameError::UnknownVersion(9))
        ));
        let mut trailing = encode_msg(&SockMsg::Start)[4..].to_vec();
        trailing.push(0);
        assert!(matches!(
            decode_msg(&trailing),
            Err(FrameError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn addr_specs_parse() {
        assert_eq!(
            SockAddr::parse("tcp:127.0.0.1:7000").unwrap(),
            SockAddr::Tcp("127.0.0.1:7000".into())
        );
        assert_eq!(
            SockAddr::parse("127.0.0.1:7000").unwrap(),
            SockAddr::Tcp("127.0.0.1:7000".into())
        );
        #[cfg(unix)]
        {
            assert_eq!(
                SockAddr::parse("uds:/tmp/x.sock").unwrap(),
                SockAddr::Uds(PathBuf::from("/tmp/x.sock"))
            );
            assert_eq!(
                SockAddr::parse("/tmp/x.sock").unwrap(),
                SockAddr::Uds(PathBuf::from("/tmp/x.sock"))
            );
        }
        assert!(SockAddr::parse("").is_err());
        assert!(SockAddr::parse("tcp:").is_err());
    }

    #[test]
    fn worker_ranges_tile_the_pid_space() {
        for n in [1usize, 2, 3, 7, 10, 1000] {
            for workers in [1usize, 2, 3, 4, 7] {
                let mut next = 0;
                for w in 0..workers {
                    let (lo, hi) = worker_range(w, workers, n);
                    assert_eq!(lo, next, "n={n} workers={workers} w={w}");
                    next = hi;
                }
                assert_eq!(next, n);
            }
        }
    }
}
