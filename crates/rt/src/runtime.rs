//! The real-thread runtime: process actors on OS threads, crossbeam
//! channels as the network, and the same protocol core as the simulator.
//!
//! Inter-process parallelism is real; the paper's intra-process
//! left/right threads are logical threads multiplexed inside each actor
//! ([`crate::core_poll::ProcessActor`]), exactly as a single-core Mach
//! task would run them. Latency injection (the `net::Delayer`) recreates
//! the distributed setting whose round trips call streaming hides — the
//! E7 wall-clock benchmarks measure precisely that.
//!
//! How actors map onto OS threads is the executor's business
//! ([`RtConfig::executor`], DESIGN.md §11): [`Executor::Threaded`] gives
//! every process its own thread (the original shape, honest parallelism,
//! caps at a few hundred processes); [`Executor::Sharded`] multiplexes
//! 10k–100k processes over a fixed worker pool. Both run the identical
//! protocol core, so their committed logs must agree — the differential
//! in `tests/rt_executor.rs` holds them to that.
//!
//! All protocol traffic goes through the two-layer `net::Transport`
//! (DESIGN.md §9): a seeded chaos layer (drops, duplicates, reordering,
//! partitions — [`crate::net::NetFaults`]) underneath a reliable-delivery
//! sublayer (per-link sequencing, cumulative acks, retransmission, dedup,
//! in-order release), so the protocol core keeps seeing the reliable FIFO
//! network the paper assumes even when the wire misbehaves.
//!
//! Scope note (documented in DESIGN.md): unlike the simulator, the
//! runtime detects completion by waiting for designated *client*
//! processes to finish their programs and resolve their guesses. It then
//! drains the network to quiescence — probe rounds that terminate when no
//! frame is unacked anywhere and no actor made progress between two
//! consecutive rounds — before halting the actors, so in-flight commit
//! waves (and their retransmissions) always land.

use crate::core_poll::Report;
use crate::executor::{self, Executor, Mode, Running, WorldSpec};
use crate::net::{Delayer, NetFaults, Wire};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError};
use opcsp_core::{CoreConfig, DataKind, ProcessId, ProtoStats, Telemetry, Value};
use opcsp_sim::{Behavior, ObsKind, Observable};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RtConfig {
    pub core: CoreConfig,
    pub optimism: bool,
    /// One-way injected network latency.
    pub latency: Duration,
    /// Wall-clock budget for a left thread before its guess aborts.
    pub fork_timeout: Duration,
    /// Wall time one `Compute` cost unit takes (zero = free).
    pub compute_unit: Duration,
    /// Hard cap on the whole run.
    pub run_timeout: Duration,
    /// Network fault injection (the chaos layer). Fault-free by default;
    /// the reliable-delivery sublayer runs either way.
    pub faults: NetFaults,
    /// Record the unified lifecycle event stream (`core::telemetry`).
    /// Off by default: with the sink disabled every record call is a
    /// no-op, keeping the hot path within the telemetry-overhead bench
    /// gate. Timestamps are microseconds since run start.
    pub telemetry: bool,
    /// How actors are scheduled onto OS threads. Defaults to the
    /// `OPCSP_RT_EXECUTOR` env override (`threaded` | `sharded` |
    /// `sharded:N`) if set — so CI can run every existing suite under the
    /// sharded executor unmodified — else [`Executor::Threaded`].
    pub executor: Executor,
    /// Where the world's processes physically live (DESIGN.md §13):
    /// [`RtTransport::InProc`] hosts every actor in this OS process over
    /// in-memory channels (the default, identical to the pre-socket
    /// runtime); [`RtTransport::Socket`] splits the pid space across
    /// separate OS processes connected over TCP or a Unix-domain socket,
    /// with envelopes crossing the wire as binary frames
    /// (`core::wire::encode_frame`).
    pub transport: crate::sock::RtTransport,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig {
            core: CoreConfig::default(),
            optimism: true,
            latency: Duration::from_millis(2),
            fork_timeout: Duration::from_secs(5),
            compute_unit: Duration::ZERO,
            run_timeout: Duration::from_secs(30),
            faults: NetFaults::none(),
            telemetry: false,
            executor: Executor::from_env().unwrap_or(Executor::Threaded),
            transport: crate::sock::RtTransport::InProc,
        }
    }
}

/// Aggregated statistics across all actors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RtStats {
    /// Protocol counters shared with the simulator (`core::telemetry`):
    /// forks, commits, aborts, rollbacks, discards, orphans, message and
    /// wire-byte counts. Accessed transparently via `Deref` —
    /// `stats.forks` reads `stats.proto.forks`.
    pub proto: ProtoStats,
    /// Transmissions the chaos layer dropped (incl. partition windows).
    pub drops_injected: u64,
    /// Transmissions the chaos layer duplicated.
    pub dups_injected: u64,
    /// Reliable-sublayer retransmissions of unacked frames.
    pub retransmits: u64,
    /// Standalone ack frames sent (piggybacked acks are free).
    pub acks: u64,
    /// Frames released to the protocol after waiting in the out-of-order
    /// buffer — proof the reorder chaos actually scrambled a link.
    pub reorder_releases: u64,
}

impl std::ops::Deref for RtStats {
    type Target = ProtoStats;
    fn deref(&self) -> &ProtoStats {
        &self.proto
    }
}

impl std::ops::DerefMut for RtStats {
    fn deref_mut(&mut self) -> &mut ProtoStats {
        &mut self.proto
    }
}

impl RtStats {
    pub(crate) fn merge(&mut self, o: &RtStats) {
        self.proto.merge(&o.proto);
        self.drops_injected += o.drops_injected;
        self.dups_injected += o.dups_injected;
        self.retransmits += o.retransmits;
        self.acks += o.acks;
        self.reorder_releases += o.reorder_releases;
    }

    pub(crate) fn absorb_net(&mut self, n: crate::net::NetStats) {
        self.drops_injected += n.drops_injected;
        self.dups_injected += n.dups_injected;
        self.retransmits += n.retransmits;
        self.acks += n.acks;
        self.reorder_releases += n.reorder_releases;
    }
}

/// Result of a run.
#[derive(Debug)]
pub struct RtResult {
    pub wall: Duration,
    pub stats: RtStats,
    /// Per-process committed observable logs (thread order).
    pub logs: BTreeMap<ProcessId, Vec<Observable>>,
    /// Released external outputs.
    pub external: Vec<(ProcessId, Value)>,
    /// True if the run hit `run_timeout` before the clients finished (or
    /// before the post-completion network drain reached quiescence).
    pub timed_out: bool,
    /// Actors that panicked (in pid order).
    pub panicked: Vec<ProcessId>,
    /// Panic payloads recovered from the panicked actors.
    pub panics: BTreeMap<ProcessId, String>,
    /// Actors still running when the join deadline expired; their threads
    /// are detached and their logs/stats are missing from this result.
    pub stragglers: Vec<ProcessId>,
    /// Unified lifecycle event stream (`core::telemetry`), merged across
    /// actors in timestamp order (µs since run start). Empty unless
    /// [`RtConfig::telemetry`] was set.
    pub telemetry: Telemetry,
}

/// Builder/handle for a runtime world.
pub struct RtWorld {
    pub(crate) cfg: RtConfig,
    pub(crate) behaviors: Vec<Arc<dyn Behavior>>,
    pub(crate) is_client: Vec<bool>,
}

impl RtWorld {
    pub fn new(cfg: RtConfig) -> Self {
        RtWorld {
            cfg,
            behaviors: Vec::new(),
            is_client: Vec::new(),
        }
    }

    /// Register a process. `is_client` marks processes whose program
    /// completion (plus guess resolution) signals the end of the run.
    pub fn add_process(&mut self, b: impl Behavior + 'static, is_client: bool) -> ProcessId {
        self.add_process_arc(Arc::new(b), is_client)
    }

    /// Register a pre-shared behavior. Huge worlds register one
    /// `Arc<dyn Behavior>` template for thousands of identical processes:
    /// registration is then O(1) per process (a pointer clone), and the
    /// sharded executor constructs actor state lazily inside the owning
    /// worker — no O(N) coordinator-side allocation spike.
    pub fn add_process_arc(&mut self, b: Arc<dyn Behavior>, is_client: bool) -> ProcessId {
        let id = ProcessId(self.behaviors.len() as u32);
        self.behaviors.push(b);
        self.is_client.push(is_client);
        id
    }

    /// Run to completion (all clients finished + network drained) or
    /// timeout. [`RtTransport::Socket`](crate::sock::RtTransport::Socket)
    /// worlds are handed to the socket runtime (`rt::sock`); everything
    /// else runs in-process over memory channels.
    pub fn run(self) -> RtResult {
        match self.cfg.transport.clone() {
            crate::sock::RtTransport::InProc => self.run_inproc(),
            crate::sock::RtTransport::Socket { addr, role } => {
                crate::sock::run_socket(self, addr, role)
            }
        }
    }

    fn run_inproc(self) -> RtResult {
        let n = self.behaviors.len();
        let cfg = Arc::new(self.cfg);
        let delayer: Arc<Delayer<Wire>> = Arc::new(Delayer::spawn());
        let (report_tx, report_rx) = unbounded::<Report>();
        let clients: Vec<ProcessId> = self
            .is_client
            .iter()
            .enumerate()
            .filter(|(_, c)| **c)
            .map(|(i, _)| ProcessId(i as u32))
            .collect();

        let start = Instant::now();
        let world = executor::spawn_world(WorldSpec {
            behaviors: self.behaviors,
            is_client: self.is_client,
            cfg: cfg.clone(),
            delayer: delayer.clone(),
            report: report_tx,
            start,
        });
        let mut coord = Coord {
            rx: report_rx,
            panics: BTreeMap::new(),
            dead: BTreeSet::new(),
        };

        // Phase 1 — wait for every client to finish. `AllExited` means
        // every executor thread exited (all report senders dropped): that
        // is a panic wave, not a timeout, and is reported as such.
        let deadline = start + cfg.run_timeout;
        let mut waiting: BTreeSet<ProcessId> = clients.into_iter().collect();
        let mut timed_out = false;
        let mut all_dead = false;
        while !waiting.is_empty() {
            // A dead client will never report done — waiting for it would
            // stall the whole run until `run_timeout`.
            waiting.retain(|p| !coord.dead.contains(p));
            if waiting.is_empty() {
                break;
            }
            match coord.recv_deadline(deadline) {
                Step::Got(Report::ClientDone(pid)) => {
                    waiting.remove(&pid);
                }
                Step::Got(_) => {}
                Step::DeadlineHit => {
                    timed_out = true;
                    break;
                }
                Step::AllExited => {
                    all_dead = true;
                    break;
                }
            }
        }

        // Phase 2 — drain the network to quiescence before halting anyone:
        // in-flight commit waves (and, under chaos, their retransmissions)
        // must land, or server committed logs get truncated. A fixed grace
        // sleep cannot bound that; probe rounds can.
        if !timed_out && !all_dead && !drain_to_quiescence(&world, &mut coord, deadline) {
            timed_out = true;
        }

        for mb in world.net.iter() {
            let _ = mb.send(Wire::Shutdown);
        }

        // Phase 3 — collect final reports, bounded by a deadline derived
        // from `run_timeout` (a stuck actor must not hang the harness).
        // Dead (panicked) actors never report a final.
        let join_budget = (cfg.run_timeout / 8)
            .max(Duration::from_millis(100))
            .min(Duration::from_secs(5));
        let collect_deadline = Instant::now() + join_budget;
        let mut stats = RtStats::default();
        let mut logs = BTreeMap::new();
        let mut external = Vec::new();
        let mut telemetry = Telemetry::new(cfg.telemetry);
        let mut finals = 0;
        while finals < n - coord.dead.len() {
            match coord.recv_deadline(collect_deadline) {
                Step::Got(Report::Final(f)) => {
                    stats.merge(&f.stats);
                    logs.insert(f.pid, f.log);
                    for v in f.external {
                        external.push((f.pid, v));
                    }
                    telemetry.absorb(f.events);
                    finals += 1;
                }
                Step::Got(_) => {}
                Step::DeadlineHit | Step::AllExited => break,
            }
        }

        // Phase 4 — join executor threads with the same deadline; report
        // stragglers instead of deadlocking, and attribute panics.
        let mut stragglers = Vec::new();
        match world.mode {
            Mode::Threaded(handles) => {
                // Thread-per-process: a panic is discovered at join (the
                // thread died), a straggler is a thread still running.
                for (i, h) in handles.into_iter().enumerate() {
                    let pid = ProcessId(i as u32);
                    while !h.is_finished() && Instant::now() < collect_deadline {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    if h.is_finished() {
                        if let Err(payload) = h.join() {
                            coord.dead.insert(pid);
                            coord
                                .panics
                                .insert(pid, executor::panic_message(payload.as_ref()));
                        }
                    } else {
                        // Detach: the thread leaks, but the harness survives.
                        stragglers.push(pid);
                    }
                }
            }
            Mode::Sharded(workers) => {
                // Workers caught per-actor panics and reported them (all
                // absorbed into `coord` by now). A wedged worker is
                // detached; every actor it still owned — no final report,
                // no reported panic — is a straggler.
                for h in workers {
                    while !h.is_finished() && Instant::now() < collect_deadline {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    if h.is_finished() {
                        let _ = h.join();
                    }
                }
                for i in 0..n {
                    let pid = ProcessId(i as u32);
                    if !logs.contains_key(&pid) && !coord.dead.contains(&pid) {
                        stragglers.push(pid);
                    }
                }
            }
        }
        let wall = start.elapsed();
        RtResult {
            wall,
            stats,
            logs,
            external,
            timed_out,
            panicked: coord.dead.into_iter().collect(),
            panics: coord.panics,
            stragglers,
            telemetry,
        }
    }
}

/// Coordinator-side receive state: one deadline-driven helper shared by
/// every phase (client wait, drain rounds, final collection), so they all
/// derive the remaining timeout identically and none can spin on a
/// zero-duration `recv_timeout` near the deadline. `Panicked` reports are
/// absorbed here — every phase learns about actor deaths the same way.
pub(crate) struct Coord {
    pub(crate) rx: Receiver<Report>,
    /// Panic payloads, attributed to pids.
    pub(crate) panics: BTreeMap<ProcessId, String>,
    /// Actors known dead (panicked): they answer no probe and send no
    /// final report.
    pub(crate) dead: BTreeSet<ProcessId>,
}

pub(crate) enum Step {
    /// A report other than `Panicked` (those are absorbed into `Coord`).
    Got(Report),
    DeadlineHit,
    /// Every executor thread exited and dropped its report sender.
    AllExited,
}

impl Coord {
    pub(crate) fn new(rx: Receiver<Report>) -> Coord {
        Coord {
            rx,
            panics: BTreeMap::new(),
            dead: BTreeSet::new(),
        }
    }

    pub(crate) fn recv_deadline(&mut self, deadline: Instant) -> Step {
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Step::DeadlineHit;
            }
            match self.rx.recv_timeout(left) {
                Ok(Report::Panicked { pid, msg }) => {
                    self.dead.insert(pid);
                    self.panics.insert(pid, msg);
                }
                Ok(r) => return Step::Got(r),
                Err(RecvTimeoutError::Timeout) => return Step::DeadlineHit,
                Err(RecvTimeoutError::Disconnected) => return Step::AllExited,
            }
        }
    }
}

/// Probe every live actor until the network is quiescent: all transports
/// report zero unacked frames and nobody's (sent, delivered) counters
/// moved between two consecutive complete rounds — i.e. nothing is in
/// flight and nothing happened, anywhere, between the two snapshots.
/// Returns false if `deadline` expires first.
fn drain_to_quiescence(world: &Running, coord: &mut Coord, deadline: Instant) -> bool {
    drain_rounds(
        coord,
        deadline,
        |dead| world.live_pids(dead),
        |round, live| {
            for i in live {
                let _ = world.net[*i].send(Wire::Probe(round));
            }
        },
    )
}

/// Transport-agnostic core of the quiescence drain: `live` reports the
/// pids that can still answer a probe (given the coordinator's dead set),
/// `probe` broadcasts round `r` to them. The in-proc runtime probes
/// mailboxes directly; the socket parent (`rt::sock`) writes probe frames
/// to worker connections and lets each worker fan out locally. The
/// quiescence criterion is identical either way.
pub(crate) fn drain_rounds(
    coord: &mut Coord,
    deadline: Instant,
    mut live: impl FnMut(&BTreeSet<ProcessId>) -> Vec<usize>,
    mut probe: impl FnMut(u64, &[usize]),
) -> bool {
    let mut prev: Option<Vec<(ProcessId, u64, u64, u64)>> = None;
    let mut stable_rounds: u32 = 0;
    let mut round: u64 = 0;
    loop {
        if Instant::now() >= deadline {
            return false;
        }
        round += 1;
        let live_pids = live(&coord.dead);
        if live_pids.is_empty() {
            // Everyone already exited (panic wave): nothing left to drain.
            return true;
        }
        probe(round, &live_pids);
        let mut replies: BTreeMap<ProcessId, (u64, u64, u64)> = BTreeMap::new();
        let round_deadline = (Instant::now() + Duration::from_millis(200)).min(deadline);
        while replies.len() < live_pids.len() {
            match coord.recv_deadline(round_deadline) {
                Step::Got(Report::Quiet {
                    pid,
                    round: r,
                    sent,
                    delivered,
                    unacked,
                }) if r == round => {
                    replies.insert(pid, (sent, delivered, unacked));
                }
                Step::Got(_) => {}
                Step::DeadlineHit => break,
                Step::AllExited => return true,
            }
        }
        // Re-derive liveness: an actor that died mid-round must not block
        // completeness forever.
        let live_now = live(&coord.dead);
        let complete = !live_now.is_empty()
            && live_now
                .iter()
                .all(|i| replies.contains_key(&ProcessId(*i as u32)));
        let unacked: u64 = replies.values().map(|v| v.2).sum();
        let counters: Vec<(ProcessId, u64, u64, u64)> =
            replies.iter().map(|(p, v)| (*p, v.0, v.1, v.2)).collect();
        if complete && prev.as_ref() == Some(&counters) {
            stable_rounds += 1;
        } else {
            stable_rounds = 0;
        }
        if complete && unacked == 0 && stable_rounds >= 1 {
            return true;
        }
        // Dead-peer tolerance: control messages are disseminated to every
        // process, so frames addressed to a dead (panicked or crashed)
        // actor stay unacked forever — strict quiescence is unreachable
        // the moment anyone dies. If deaths were reported and *nothing*
        // has moved (counters AND unacked byte-stable) for several
        // complete rounds, the remaining unacked frames are undeliverable
        // and the drain is as done as it can be.
        if !coord.dead.is_empty() && stable_rounds >= 3 {
            return true;
        }
        prev = if complete { Some(counters) } else { None };
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Theorem-1 merge-order equivalence for two committed rt logs: the
/// reliable sublayer guarantees FIFO *per link*, so the projection of
/// receives onto each sender (and of sends onto each target) must match
/// positionally, but cross-sender interleaving at a fan-in is legal CSP
/// nondeterminism — chaos (or a different executor's scheduling) may
/// reorder it. Outputs are compared as multisets (they follow the merge).
/// Shared by the `opcsp-run --rt --compare` oracle and the executor
/// differential tests.
pub fn merge_equiv(base: &[Observable], other: &[Observable]) -> bool {
    use Observable as O;
    if base.len() != other.len() {
        return false;
    }
    let peers: BTreeSet<ProcessId> = base
        .iter()
        .chain(other)
        .filter_map(|o| match o {
            O::Received { from, .. } => Some(*from),
            O::Sent { to, .. } => Some(*to),
            _ => None,
        })
        .collect();
    for peer in peers {
        let recv = |log: &[Observable]| -> Vec<Observable> {
            log.iter()
                .filter(|o| matches!(o, O::Received { from, .. } if *from == peer))
                .cloned()
                .collect()
        };
        let sent = |log: &[Observable]| -> Vec<Observable> {
            log.iter()
                .filter(|o| matches!(o, O::Sent { to, .. } if *to == peer))
                .cloned()
                .collect()
        };
        if recv(base) != recv(other) || sent(base) != sent(other) {
            return false;
        }
    }
    let outputs = |log: &[Observable]| -> Vec<String> {
        let mut v: Vec<String> = log
            .iter()
            .filter_map(|o| match o {
                O::Output { payload } => Some(format!("{payload:?}")),
                _ => None,
            })
            .collect();
        v.sort();
        v
    };
    outputs(base) == outputs(other)
}

/// Convenience: the observable kind of a sent message in logs.
pub fn obs_kind(k: DataKind) -> ObsKind {
    k.into()
}
