//! Chaos differential tests: the threaded runtime under an unreliable
//! network (drops, duplicates, reordering, partitions) must commit
//! exactly the observable logs of the fault-free run — the reliable
//! sublayer absorbs the chaos before the protocol core sees it.
//!
//! Also pins the ISSUE-4 shutdown/liveness bugfixes: actor-panic
//! propagation (not a fake timeout), drain-to-quiescence shutdown (no
//! truncated commit waves), and straggler reporting (no harness
//! deadlock). The spurious-timer-flush fix is pinned at the unit level in
//! `net.rs` (`shutdown_flush_drops_timer_class_items`).

use opcsp_core::ProcessId;
use opcsp_rt::{NetFaults, Partition, RtConfig, RtResult, RtWorld};
use opcsp_sim::{Behavior, BehaviorState, Effect, Observable, Resume};
use opcsp_workloads::chain::OptimisticForwarder;
use opcsp_workloads::servers::Server;
use opcsp_workloads::streaming::PutLineClient;
use std::time::Duration;

fn cfg(latency_ms: u64, faults: NetFaults) -> RtConfig {
    RtConfig {
        optimism: true,
        latency: Duration::from_millis(latency_ms),
        fork_timeout: Duration::from_secs(5),
        run_timeout: Duration::from_secs(20),
        faults,
        ..RtConfig::default()
    }
}

fn chaos(seed: u64) -> NetFaults {
    NetFaults {
        seed,
        drop: 0.2,
        dup: 0.1,
        reorder: 3,
        partitions: vec![],
    }
}

/// Workload 1: call streaming — client puts `n` lines to a server.
fn run_streaming(faults: NetFaults) -> RtResult {
    let mut w = RtWorld::new(cfg(2, faults));
    w.add_process(PutLineClient::new(8), true);
    w.add_process(Server::new("S", 0), false);
    w.run()
}

/// Workload 2: a pipeline of optimistic forwarders — commits keep flowing
/// downstream after the client is already done.
fn run_chain(faults: NetFaults) -> RtResult {
    let depth = 2u32;
    let mut w = RtWorld::new(cfg(2, faults));
    w.add_process(PutLineClient::to(4, ProcessId(1)), true);
    for hop in 1..=depth {
        w.add_process(
            OptimisticForwarder {
                name: format!("Hop{hop}"),
                downstream: ProcessId(hop + 1),
                compute: 0,
            },
            false,
        );
    }
    w.add_process(Server::new("Terminal", 0), false);
    w.run()
}

/// Committed observable logs must be identical per process — the
/// `check_theorem1`-style positional comparison, applied to `RtResult`.
fn assert_logs_equivalent(baseline: &RtResult, chaotic: &RtResult, label: &str) {
    assert_eq!(
        baseline.logs.keys().collect::<Vec<_>>(),
        chaotic.logs.keys().collect::<Vec<_>>(),
        "{label}: process sets differ"
    );
    for (p, base_log) in &baseline.logs {
        assert_eq!(
            base_log, &chaotic.logs[p],
            "{label}: committed log of {p} diverged under chaos"
        );
    }
    assert_eq!(
        baseline.external, chaotic.external,
        "{label}: released external outputs diverged under chaos"
    );
}

fn assert_clean(r: &RtResult, label: &str) {
    assert!(!r.timed_out, "{label}: timed out ({:?})", r.stats);
    assert!(r.panicked.is_empty(), "{label}: panics {:?}", r.panics);
    assert!(r.stragglers.is_empty(), "{label}: stragglers {:?}", r.stragglers);
}

#[test]
fn chaos_differential_streaming() {
    let baseline = run_streaming(NetFaults::none());
    assert_clean(&baseline, "baseline");
    assert_eq!(baseline.stats.drops_injected, 0);
    for seed in [1u64, 7, 42] {
        let chaotic = run_streaming(chaos(seed));
        let label = format!("streaming seed={seed}");
        assert_clean(&chaotic, &label);
        assert_logs_equivalent(&baseline, &chaotic, &label);
        // The chaos layer provably fired and the sublayer absorbed it.
        assert!(chaotic.stats.drops_injected > 0, "{label}: {:?}", chaotic.stats);
        assert!(chaotic.stats.dups_injected > 0, "{label}: {:?}", chaotic.stats);
        assert!(chaotic.stats.retransmits > 0, "{label}: {:?}", chaotic.stats);
        // No protocol-level orphan leaks: dedup killed every duplicate
        // before the protocol core could see it.
        assert_eq!(
            chaotic.stats.orphans, baseline.stats.orphans,
            "{label}: orphan counts diverged"
        );
    }
}

#[test]
fn chaos_differential_chain() {
    let baseline = run_chain(NetFaults::none());
    assert_clean(&baseline, "baseline");
    assert_eq!(baseline.stats.aborts, 0, "{:?}", baseline.stats);
    for seed in [1u64, 7, 42] {
        let chaotic = run_chain(chaos(seed));
        let label = format!("chain seed={seed}");
        assert_clean(&chaotic, &label);
        assert_logs_equivalent(&baseline, &chaotic, &label);
        assert!(chaotic.stats.drops_injected > 0, "{label}: {:?}", chaotic.stats);
        assert!(chaotic.stats.dups_injected > 0, "{label}: {:?}", chaotic.stats);
        assert!(chaotic.stats.retransmits > 0, "{label}: {:?}", chaotic.stats);
        assert_eq!(
            chaotic.stats.orphans, baseline.stats.orphans,
            "{label}: orphan counts diverged"
        );
    }
}

/// A one-shot partition window severs the client→server link mid-run;
/// backoff + retransmission recover once it heals, and the committed
/// logs still match the fault-free run.
#[test]
fn partition_window_heals_and_run_completes() {
    let baseline = run_streaming(NetFaults::none());
    let faults = NetFaults {
        seed: 3,
        drop: 0.0,
        dup: 0.0,
        reorder: 0,
        partitions: vec![Partition {
            from: ProcessId(0),
            to: ProcessId(1),
            start_ms: 0,
            duration_ms: 80,
        }],
    };
    let r = run_streaming(faults);
    assert_clean(&r, "partition");
    assert!(r.stats.drops_injected > 0, "{:?}", r.stats);
    assert!(r.stats.retransmits > 0, "{:?}", r.stats);
    assert_logs_equivalent(&baseline, &r, "partition");
}

// ---------------------------------------------------------------------------
// Regression pins for the ISSUE-4 rt shutdown/liveness bugfixes
// ---------------------------------------------------------------------------

/// A behavior that panics on its first step.
struct Boom;
impl Behavior for Boom {
    fn init(&self) -> BehaviorState {
        BehaviorState::new(())
    }
    fn step(&self, _state: &mut BehaviorState, _resume: Resume) -> Effect {
        panic!("boom: injected actor panic");
    }
}

/// Pre-fix, `RecvTimeoutError::Disconnected` (every actor dead) was
/// collapsed into `timed_out = true` and the panic vanished. Now the
/// panic is surfaced with its payload and the run is NOT a timeout.
#[test]
fn actor_panic_is_reported_not_a_timeout() {
    let mut w = RtWorld::new(cfg(1, NetFaults::none()));
    let p = w.add_process(Boom, true);
    let r = w.run();
    assert!(
        !r.timed_out,
        "an actor panic must not masquerade as a timeout"
    );
    assert_eq!(r.panicked, vec![p]);
    assert!(
        r.panics[&p].contains("boom"),
        "panic payload must propagate from join(): {:?}",
        r.panics
    );
}

/// Panic in a *server* while the client is stuck waiting on it: the run
/// times out (the client can never finish), but the panic is still
/// attributed to the right actor with its payload.
#[test]
fn server_panic_is_attributed_even_on_timeout() {
    let mut w = RtWorld::new(RtConfig {
        run_timeout: Duration::from_millis(400),
        ..cfg(1, NetFaults::none())
    });
    let c = w.add_process(PutLineClient::new(2), true);
    let s = w.add_process(Boom, false);
    let r = w.run();
    assert!(r.timed_out, "client can never finish");
    assert_eq!(r.panicked, vec![s]);
    assert!(!r.panicked.contains(&c));
}

/// Pre-fix, shutdown was sent directly to actor inboxes after a fixed
/// `grace` sleep (racing in-flight commit waves still queued in the
/// delayer; `grace = 0` reliably truncated downstream logs). Now the
/// coordinator drains the network to quiescence, so the pipeline's
/// post-client-completion traffic always lands.
#[test]
fn shutdown_drains_inflight_commit_waves() {
    for _ in 0..5 {
        let r = run_chain(NetFaults::none());
        assert_clean(&r, "chain drain");
        let terminal = ProcessId(3);
        let received = r.logs[&terminal]
            .iter()
            .filter(|o| matches!(o, Observable::Received { .. }))
            .count();
        assert_eq!(
            received, 4,
            "all items must reach the terminal before shutdown: {:?}",
            r.logs[&terminal]
        );
        assert_eq!(r.stats.aborts, 0, "{:?}", r.stats);
        // Every fork's commit wave landed: no guess left unresolved
        // anywhere, so commits == forks.
        assert_eq!(r.stats.commits, r.stats.forks, "{:?}", r.stats);
    }
}

/// A behavior that wedges its actor thread forever.
struct Stuck;
impl Behavior for Stuck {
    fn init(&self) -> BehaviorState {
        BehaviorState::new(())
    }
    fn step(&self, _state: &mut BehaviorState, _resume: Resume) -> Effect {
        std::thread::sleep(Duration::from_secs(600));
        Effect::Done
    }
}

/// Pre-fix, the final-report loop broke into an unconditional `join()`
/// that hung forever on a wedged actor. Now the join has a deadline
/// derived from `run_timeout`: the wedged actor is reported as a
/// straggler, the healthy actors' results still arrive, and the harness
/// returns.
#[test]
fn stuck_actor_is_reported_as_straggler_not_deadlock() {
    let t0 = std::time::Instant::now();
    let mut w = RtWorld::new(RtConfig {
        run_timeout: Duration::from_millis(600),
        ..cfg(1, NetFaults::none())
    });
    let c = w.add_process(PutLineClient::new(2), true);
    let _s = w.add_process(Server::new("S", 0), false);
    let stuck = w.add_process(Stuck, false);
    let r = w.run();
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "harness must not hang on a wedged actor"
    );
    assert_eq!(r.stragglers, vec![stuck]);
    assert!(
        r.logs.contains_key(&c),
        "healthy actors' final reports still collected"
    );
    assert!(r.panicked.is_empty());
}
