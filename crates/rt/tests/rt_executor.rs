//! Executor differential tests: the thread-per-process executor and the
//! sharded M:N executor run the identical protocol core over the same
//! reliable transport, so their committed observable logs must agree.
//!
//! Fault-free single-writer workloads (streaming, chain) must match
//! *exactly* — logs, external outputs, and the deterministic protocol
//! counters. Multi-writer fan-in is compared under merge-order tolerance
//! ([`opcsp_rt::merge_equiv`]): per-link FIFO projections positionally
//! equal, output multisets equal. Chaos runs under the sharded executor
//! reuse the same oracle against the fault-free threaded baseline.
//!
//! Also holds the ISSUE-6 acceptance bar: a 10k-process fan-in completes
//! under `Executor::Sharded` (the thread-per-process executor never
//! spawns a world that wide).

use opcsp_core::ProcessId;
use opcsp_rt::{merge_equiv, Executor, NetFaults, RtConfig, RtResult, RtWorld};
use opcsp_sim::Observable;
use opcsp_workloads::chain::OptimisticForwarder;
use opcsp_workloads::fan_in::{consumer, rt_fan_in_world, FanInOpts};
use opcsp_workloads::servers::Server;
use opcsp_workloads::streaming::PutLineClient;
use std::time::Duration;

fn cfg(ex: Executor, faults: NetFaults) -> RtConfig {
    RtConfig {
        optimism: true,
        latency: Duration::from_millis(2),
        fork_timeout: Duration::from_secs(5),
        run_timeout: Duration::from_secs(30),
        faults,
        executor: ex,
        ..RtConfig::default()
    }
}

fn chaos(seed: u64) -> NetFaults {
    NetFaults {
        seed,
        drop: 0.2,
        dup: 0.1,
        reorder: 3,
        partitions: vec![],
    }
}

fn run_streaming(ex: Executor, faults: NetFaults) -> RtResult {
    let mut w = RtWorld::new(cfg(ex, faults));
    w.add_process(PutLineClient::new(8), true);
    w.add_process(Server::new("S", 0), false);
    w.run()
}

fn run_chain(ex: Executor, faults: NetFaults) -> RtResult {
    let mut w = RtWorld::new(cfg(ex, faults));
    w.add_process(PutLineClient::to(4, ProcessId(1)), true);
    for hop in 1..=2u32 {
        w.add_process(
            OptimisticForwarder {
                name: format!("Hop{hop}"),
                downstream: ProcessId(hop + 1),
                compute: 0,
            },
            false,
        );
    }
    w.add_process(Server::new("Terminal", 0), false);
    w.run()
}

fn run_fan_in(ex: Executor, faults: NetFaults, producers: u32, n: u32) -> RtResult {
    let opts = FanInOpts {
        producers,
        n,
        ..FanInOpts::default()
    };
    rt_fan_in_world(&opts, cfg(ex, faults)).run()
}

fn assert_clean(r: &RtResult, label: &str) {
    assert!(!r.timed_out, "{label}: timed out ({:?})", r.stats);
    assert!(r.panicked.is_empty(), "{label}: panics {:?}", r.panics);
    assert!(r.stragglers.is_empty(), "{label}: stragglers {:?}", r.stragglers);
}

/// Exact equality: per-process committed logs and released externals.
fn assert_logs_exact(base: &RtResult, other: &RtResult, label: &str) {
    assert_eq!(
        base.logs.keys().collect::<Vec<_>>(),
        other.logs.keys().collect::<Vec<_>>(),
        "{label}: process sets differ"
    );
    for (p, log) in &base.logs {
        assert_eq!(log, &other.logs[p], "{label}: committed log of {p} diverged");
    }
    assert_eq!(base.external, other.external, "{label}: externals diverged");
}

/// Merge-order-tolerant equality, per process: per-link FIFO projections
/// positionally equal and output multisets equal.
fn assert_logs_merge_equiv(base: &RtResult, other: &RtResult, label: &str) {
    assert_eq!(
        base.logs.keys().collect::<Vec<_>>(),
        other.logs.keys().collect::<Vec<_>>(),
        "{label}: process sets differ"
    );
    for (p, log) in &base.logs {
        assert!(
            merge_equiv(log, &other.logs[p]),
            "{label}: log of {p} not merge-equivalent\n base: {log:?}\nother: {:?}",
            other.logs[p]
        );
    }
}

/// The executor must not change what the protocol *does* — only when the
/// wall clock lets it happen. These counters are schedule-independent on
/// fault-free single-writer workloads; wire/guard byte counters and
/// control-message counts are timing-dependent (retransmission cadence,
/// ack piggybacking) and deliberately excluded.
fn assert_stats_deterministic_subset(base: &RtResult, other: &RtResult, label: &str) {
    let (b, o) = (&base.stats, &other.stats);
    assert_eq!(b.forks, o.forks, "{label}: forks diverged");
    assert_eq!(b.commits, o.commits, "{label}: commits diverged");
    assert_eq!(b.aborts, o.aborts, "{label}: aborts diverged");
    assert_eq!(b.rollbacks, o.rollbacks, "{label}: rollbacks diverged");
    assert_eq!(b.orphans, o.orphans, "{label}: orphans diverged");
    assert_eq!(b.data_messages, o.data_messages, "{label}: data messages diverged");
}

#[test]
fn executor_differential_streaming_exact() {
    let threaded = run_streaming(Executor::Threaded, NetFaults::none());
    assert_clean(&threaded, "threaded streaming");
    for workers in [1usize, 2, 4] {
        let sharded = run_streaming(Executor::Sharded { workers }, NetFaults::none());
        let label = format!("sharded:{workers} streaming");
        assert_clean(&sharded, &label);
        assert_logs_exact(&threaded, &sharded, &label);
        assert_stats_deterministic_subset(&threaded, &sharded, &label);
    }
}

#[test]
fn executor_differential_chain_exact() {
    let threaded = run_chain(Executor::Threaded, NetFaults::none());
    assert_clean(&threaded, "threaded chain");
    // 2 workers for a 4-process pipeline: every link crosses a shard.
    let sharded = run_chain(Executor::Sharded { workers: 2 }, NetFaults::none());
    assert_clean(&sharded, "sharded chain");
    assert_logs_exact(&threaded, &sharded, "chain");
    assert_stats_deterministic_subset(&threaded, &sharded, "chain");
}

#[test]
fn executor_differential_fan_in_merge_tolerant() {
    let threaded = run_fan_in(Executor::Threaded, NetFaults::none(), 4, 4);
    assert_clean(&threaded, "threaded fan_in");
    let sharded = run_fan_in(Executor::Sharded { workers: 3 }, NetFaults::none(), 4, 4);
    assert_clean(&sharded, "sharded fan_in");
    assert_logs_merge_equiv(&threaded, &sharded, "fan_in");
    // Whatever the arrival order, every producer's full stream landed.
    let opts = FanInOpts {
        producers: 4,
        n: 4,
        ..FanInOpts::default()
    };
    for r in [&threaded, &sharded] {
        let recvd = r.logs[&consumer(&opts)]
            .iter()
            .filter(|o| matches!(o, Observable::Received { .. }))
            .count();
        assert_eq!(recvd as u32, opts.producers * opts.n);
    }
}

/// The chaos differential (rt_chaos.rs) under the sharded executor: the
/// reliable sublayer must absorb drops/dups/reordering no matter which
/// thread pumps the transport, and the committed logs must still match
/// the fault-free *threaded* baseline — one oracle across both axes.
#[test]
fn executor_differential_under_chaos() {
    let baseline = run_streaming(Executor::Threaded, NetFaults::none());
    assert_clean(&baseline, "baseline");
    for seed in [1u64, 7, 42] {
        let r = run_streaming(Executor::Sharded { workers: 2 }, chaos(seed));
        let label = format!("sharded chaos seed={seed}");
        assert_clean(&r, &label);
        assert_logs_exact(&baseline, &r, &label);
        assert!(r.stats.drops_injected > 0, "{label}: {:?}", r.stats);
        assert!(r.stats.retransmits > 0, "{label}: {:?}", r.stats);
        assert_eq!(r.stats.orphans, baseline.stats.orphans, "{label}: orphans");
    }
}

#[test]
fn executor_differential_fan_in_under_chaos() {
    let baseline = run_fan_in(Executor::Threaded, NetFaults::none(), 3, 3);
    assert_clean(&baseline, "baseline");
    let r = run_fan_in(Executor::Sharded { workers: 2 }, chaos(7), 3, 3);
    assert_clean(&r, "sharded fan_in chaos");
    assert_logs_merge_equiv(&baseline, &r, "fan_in chaos");
    assert!(r.stats.drops_injected > 0, "{:?}", r.stats);
}

// ---------------------------------------------------------------------------
// Scale: worlds the thread-per-process executor cannot host
// ---------------------------------------------------------------------------

/// Run a wide fan-in (one call per producer) under the sharded executor.
/// Optimism is off: reply guards grow O(width) per message when every
/// producer speculates concurrently — a protocol cost the guard-interner
/// experiments measure, not an executor one (see `rt_fan_in_world`).
fn run_wide(producers: u32, workers: usize) -> RtResult {
    let opts = FanInOpts {
        producers,
        n: 1,
        ..FanInOpts::default()
    };
    let cfg = RtConfig {
        optimism: false,
        latency: Duration::ZERO,
        run_timeout: Duration::from_secs(120),
        executor: Executor::Sharded { workers },
        ..RtConfig::default()
    };
    rt_fan_in_world(&opts, cfg).run()
}

fn assert_wide_clean(r: &RtResult, producers: u32, budget: Duration, label: &str) {
    assert_clean(r, label);
    assert!(
        r.wall < budget,
        "{label}: took {:?}, budget {budget:?}",
        r.wall
    );
    let board = ProcessId(producers);
    let recvd = r.logs[&board]
        .iter()
        .filter(|o| matches!(o, Observable::Received { .. }))
        .count();
    assert_eq!(recvd as u32, producers, "{label}: consumer missed calls");
    assert_eq!(r.logs.len() as u32, producers + 1, "{label}: missing final reports");
}

/// ISSUE-6 acceptance: 10k processes complete under the sharded executor.
#[test]
fn wide_fan_in_10k_completes_sharded() {
    let producers = 10_000;
    let r = run_wide(producers, 4);
    let budget = if cfg!(debug_assertions) {
        Duration::from_secs(100)
    } else {
        Duration::from_secs(30)
    };
    assert_wide_clean(&r, producers, budget, "10k fan_in");
}

/// The CI scaling smoke: 5k processes on 4 workers inside a tight
/// wall-clock budget (run in release by the workflow's scaling job).
#[test]
fn wide_fan_in_5k_smoke() {
    let producers = 5_000;
    let r = run_wide(producers, 4);
    let budget = if cfg!(debug_assertions) {
        Duration::from_secs(60)
    } else {
        Duration::from_secs(15)
    };
    assert_wide_clean(&r, producers, budget, "5k smoke");
}
