//! Real-thread runtime tests: call streaming with genuine wall-clock
//! latency, value faults, and equivalence against the pessimistic run.

use opcsp_core::{ProcessId, Value};
use opcsp_rt::{RtConfig, RtWorld};
use opcsp_sim::Observable;
use opcsp_workloads::servers::Server;
use opcsp_workloads::streaming::PutLineClient;
use std::time::Duration;

const CLIENT: ProcessId = ProcessId(0);
const SERVER: ProcessId = ProcessId(1);

fn run_rt(n: u32, optimism: bool, latency_ms: u64, fail_at: Option<u32>) -> opcsp_rt::RtResult {
    let cfg = RtConfig {
        optimism,
        latency: Duration::from_millis(latency_ms),
        fork_timeout: Duration::from_secs(2),
        run_timeout: Duration::from_secs(20),
        ..RtConfig::default()
    };
    let mut w = RtWorld::new(cfg);
    let c = w.add_process(PutLineClient::new(n), true);
    let s = w.add_process(
        Server::new("WindowManager", 0).with_reply(move |line| {
            let i = line.as_int().unwrap_or(-1) as u32;
            Value::Bool(fail_at.map(|f| i != f).unwrap_or(true))
        }),
        false,
    );
    assert_eq!((c, s), (CLIENT, SERVER));
    w.run()
}

fn successful_receives(r: &opcsp_rt::RtResult) -> usize {
    r.logs
        .get(&CLIENT)
        .map(|log| {
            log.iter()
                .filter(|o| matches!(o, Observable::Received { payload, .. } if payload.is_true()))
                .count()
        })
        .unwrap_or(0)
}

#[test]
fn rt_streaming_completes_and_commits() {
    let r = run_rt(8, true, 2, None);
    assert!(!r.timed_out, "run timed out: {:?}", r.stats);
    assert_eq!(r.stats.forks, 8);
    assert_eq!(r.stats.aborts, 0);
    assert_eq!(successful_receives(&r), 8);
}

#[test]
fn rt_streaming_beats_sequential_wall_clock() {
    let (n, d) = (10, 8);
    let opt = run_rt(n, true, d, None);
    let pess = run_rt(n, false, d, None);
    assert!(!opt.timed_out && !pess.timed_out);
    // Sequential pays n round trips (2·d each); streaming pays ~one round
    // trip plus overhead. Generous margin for scheduling noise.
    assert!(
        opt.wall < pess.wall,
        "streaming {:?} should beat sequential {:?}",
        opt.wall,
        pess.wall
    );
    assert!(
        pess.wall >= Duration::from_millis((n as u64) * 2 * d),
        "sequential lower bound violated: {:?}",
        pess.wall
    );
}

#[test]
fn rt_value_fault_rolls_back_and_matches_sequential_outcome() {
    let fail = 3;
    let opt = run_rt(8, true, 4, Some(fail));
    let pess = run_rt(8, false, 4, Some(fail));
    assert!(!opt.timed_out && !pess.timed_out);
    assert!(opt.stats.aborts >= 1, "{:?}", opt.stats);
    // Both deliver exactly `fail` lines successfully.
    assert_eq!(successful_receives(&pess), fail as usize);
    assert_eq!(successful_receives(&opt), fail as usize);
    // Committed client logs agree.
    assert_eq!(pess.logs[&CLIENT], opt.logs[&CLIENT]);
}

#[test]
fn rt_pessimistic_mode_never_forks() {
    let r = run_rt(4, false, 1, None);
    assert!(!r.timed_out);
    assert_eq!(r.stats.forks, 0);
    assert_eq!(r.stats.rollbacks, 0);
    assert_eq!(successful_receives(&r), 4);
}

#[test]
fn rt_logs_match_across_modes() {
    let opt = run_rt(6, true, 3, None);
    let pess = run_rt(6, false, 3, None);
    assert_eq!(
        pess.logs[&CLIENT], opt.logs[&CLIENT],
        "committed client observables must be identical"
    );
    assert_eq!(pess.logs[&SERVER], opt.logs[&SERVER]);
}

#[test]
fn rt_fork_after_send_streams_too() {
    use opcsp_workloads::streaming::PutLineClientFas;
    let cfg = RtConfig {
        optimism: true,
        latency: Duration::from_millis(3),
        fork_timeout: Duration::from_secs(2),
        run_timeout: Duration::from_secs(20),
        ..RtConfig::default()
    };
    let mut w = RtWorld::new(cfg);
    let c = w.add_process(
        PutLineClientFas {
            n: 8,
            server: SERVER,
        },
        true,
    );
    let s = w.add_process(
        Server::new("WindowManager", 0).with_reply(|_| Value::Bool(true)),
        false,
    );
    assert_eq!((c, s), (CLIENT, SERVER));
    let r = w.run();
    assert!(!r.timed_out, "{:?}", r.stats);
    assert_eq!(r.stats.forks, 8);
    assert_eq!(r.stats.aborts, 0);
    assert_eq!(successful_receives(&r), 8);
}
