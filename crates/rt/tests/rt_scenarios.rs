//! Real-thread runtime on the richer workloads: the update/write scenario
//! (value faults on real threads), chained optimistic forwarders, and two
//! contending clients.

use opcsp_core::{ProcessId, Value};
use opcsp_rt::{RtConfig, RtWorld};
use opcsp_sim::Observable;
use opcsp_workloads::chain::OptimisticForwarder;
use opcsp_workloads::servers::{ForwardServer, Server};
use opcsp_workloads::streaming::PutLineClient;
use opcsp_workloads::update_write::UpdateWriteClient;
use std::time::Duration;

fn rt_cfg(optimism: bool, latency_ms: u64) -> RtConfig {
    RtConfig {
        optimism,
        latency: Duration::from_millis(latency_ms),
        fork_timeout: Duration::from_secs(2),
        run_timeout: Duration::from_secs(20),
        ..RtConfig::default()
    }
}

#[test]
fn update_write_on_real_threads() {
    for optimism in [true, false] {
        let mut w = RtWorld::new(rt_cfg(optimism, 3));
        let x = w.add_process(UpdateWriteClient, true);
        let _y = w.add_process(ForwardServer::new("Y(db)", ProcessId(2), "C2"), false);
        let _z = w.add_process(Server::new("Z(fs)", 0), false);
        let r = w.run();
        assert!(!r.timed_out, "optimism={optimism}: {:?}", r.stats);
        // The client's committed log ends with the successful Write return.
        let log = &r.logs[&x];
        assert!(
            matches!(
                log.last(),
                Some(Observable::Received { payload, .. }) if payload.is_true()
            ),
            "optimism={optimism}: {log:?}"
        );
    }
}

#[test]
fn update_write_value_fault_on_real_threads() {
    let mut w = RtWorld::new(rt_cfg(true, 3));
    let x = w.add_process(UpdateWriteClient, true);
    let _y = w.add_process(
        ForwardServer::new("Y(db)", ProcessId(2), "C2").with_reply(|_| Value::Bool(false)),
        false,
    );
    let _z = w.add_process(Server::new("Z(fs)", 0), false);
    let r = w.run();
    assert!(!r.timed_out, "{:?}", r.stats);
    assert!(
        r.stats.aborts >= 1,
        "the wrong guess must abort: {:?}",
        r.stats
    );
    // No committed Write: the client's log has no send to Z.
    let to_z = r.logs[&x]
        .iter()
        .filter(|o| matches!(o, Observable::Sent { to, .. } if *to == ProcessId(2)))
        .count();
    assert_eq!(
        to_z, 0,
        "failed Update must suppress the Write: {:?}",
        r.logs[&x]
    );
}

#[test]
fn chain_of_forwarders_on_real_threads() {
    let depth = 3u32;
    let mut w = RtWorld::new(rt_cfg(true, 2));
    w.add_process(PutLineClient::to(4, ProcessId(1)), true);
    for hop in 1..=depth {
        w.add_process(
            OptimisticForwarder {
                name: format!("Hop{hop}"),
                downstream: ProcessId(hop + 1),
                compute: 0,
            },
            false,
        );
    }
    w.add_process(Server::new("Terminal", 0), false);
    let r = w.run();
    assert!(!r.timed_out, "{:?}", r.stats);
    // Client fork per item + hop forks.
    assert!(r.stats.forks >= 4, "{:?}", r.stats);
    assert_eq!(r.stats.aborts, 0, "{:?}", r.stats);
    // All four items reached the terminal.
    let terminal = ProcessId(depth + 1);
    let received = r.logs[&terminal]
        .iter()
        .filter(|o| matches!(o, Observable::Received { .. }))
        .count();
    assert_eq!(received, 4);
}

#[test]
fn two_contending_clients_on_real_threads() {
    let mut w = RtWorld::new(rt_cfg(true, 2));
    let a = w.add_process(PutLineClient::to(5, ProcessId(2)), true);
    let b = w.add_process(PutLineClient::to(5, ProcessId(2)), true);
    let s = w.add_process(Server::new("Shared", 0), false);
    let r = w.run();
    assert!(!r.timed_out, "{:?}", r.stats);
    assert_eq!(r.stats.rollbacks, 0, "independent clients never conflict");
    // Both clients delivered all their lines.
    for c in [a, b] {
        let got = r.logs[&c]
            .iter()
            .filter(|o| matches!(o, Observable::Received { payload, .. } if payload.is_true()))
            .count();
        assert_eq!(got, 5, "client {c}");
    }
    let served = r.logs[&s]
        .iter()
        .filter(|o| matches!(o, Observable::Received { .. }))
        .count();
    assert_eq!(served, 10);
}

#[test]
fn targeted_control_on_real_threads() {
    use opcsp_core::CoreConfig;
    let cfg = RtConfig {
        core: CoreConfig {
            targeted_control: true,
            ..CoreConfig::default()
        },
        optimism: true,
        latency: Duration::from_millis(2),
        fork_timeout: Duration::from_secs(2),
        run_timeout: Duration::from_secs(20),
        ..RtConfig::default()
    };
    let mut w = RtWorld::new(cfg);
    let c = w.add_process(PutLineClient::new(8), true);
    let _s = w.add_process(Server::new("S", 0), false);
    // A bystander that never participates: with targeted control it
    // receives no control traffic at all.
    let _idle = w.add_process(Server::new("Idle", 0), false);
    let r = w.run();
    assert!(!r.timed_out, "{:?}", r.stats);
    assert_eq!(r.stats.aborts, 0);
    let got = r.logs[&c]
        .iter()
        .filter(|o| matches!(o, Observable::Received { payload, .. } if payload.is_true()))
        .count();
    assert_eq!(got, 8);
    // Broadcast would send 2 ctrl msgs per commit (2 other processes);
    // targeted sends only to the server: strictly fewer.
    assert!(
        r.stats.control_messages <= 8,
        "targeted must not spam the bystander: {}",
        r.stats.control_messages
    );
}
