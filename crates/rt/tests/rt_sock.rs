//! Socket-transport differential tests (DESIGN.md §13): a world split
//! across a parent and worker *runtimes* connected over a real socket
//! must commit logs merge-equivalent to the same world run in-process.
//!
//! Parent and workers run as threads of this test process, each calling
//! `RtWorld::run()` with its own `RtTransport::Socket` role — the full
//! handshake, frame codec, routing, quiescence drain, and final
//! collection paths are exercised over a real Unix-domain (and, in one
//! smoke test, TCP) socket; only `fork(2)` is skipped. The CLI test in
//! `crates/lang/tests/cli_sock.rs` covers true multi-process runs.
//!
//! Chaos runs on the socket path reuse the fault-free in-proc run as the
//! oracle, under merge-order tolerance ([`opcsp_rt::merge_equiv`]): the
//! chaos layer lives inside each actor's transport, so the socket hop
//! underneath it must not change what commits.

use opcsp_core::ProcessId;
use opcsp_rt::{
    merge_equiv, NetFaults, RtConfig, RtResult, RtTransport, RtWorld, SockAddr, SockRole,
};
use opcsp_workloads::chain::OptimisticForwarder;
use opcsp_workloads::servers::Server;
use opcsp_workloads::streaming::PutLineClient;
use std::time::Duration;

fn base_cfg(faults: NetFaults, transport: RtTransport) -> RtConfig {
    RtConfig {
        optimism: true,
        latency: Duration::from_millis(2),
        fork_timeout: Duration::from_secs(5),
        run_timeout: Duration::from_secs(30),
        faults,
        transport,
        ..RtConfig::default()
    }
}

fn chaos(seed: u64) -> NetFaults {
    NetFaults {
        seed,
        drop: 0.15,
        dup: 0.1,
        reorder: 3,
        partitions: vec![],
    }
}

/// `streaming`: putline client → server. `chain`: client → 2 forwarding
/// hops → terminal server. Both cross the worker boundary for any split.
fn build_world(workload: &str, cfg: RtConfig) -> RtWorld {
    let mut w = RtWorld::new(cfg);
    match workload {
        "streaming" => {
            w.add_process(PutLineClient::new(8), true);
            w.add_process(Server::new("S", 0), false);
        }
        "chain" => {
            w.add_process(PutLineClient::to(4, ProcessId(1)), true);
            for hop in 1..=2u32 {
                w.add_process(
                    OptimisticForwarder {
                        name: format!("Hop{hop}"),
                        downstream: ProcessId(hop + 1),
                        compute: 0,
                    },
                    false,
                );
            }
            w.add_process(Server::new("Terminal", 0), false);
        }
        other => panic!("unknown workload {other}"),
    }
    w
}

fn fresh_uds(tag: &str) -> SockAddr {
    let p = std::env::temp_dir().join(format!("opcsp-rt-sock-{}-{tag}.sock", std::process::id()));
    let _ = std::fs::remove_file(&p);
    SockAddr::parse(&format!("uds:{}", p.display())).expect("uds addr")
}

/// Run `workload` split across `workers` worker runtimes plus a parent,
/// all threads of this process, over `addr`. Returns the parent's
/// (authoritative) result.
fn run_over_socket(
    workload: &str,
    faults: NetFaults,
    addr: SockAddr,
    workers: usize,
) -> RtResult {
    let mut handles = Vec::new();
    for index in 0..workers {
        let addr = addr.clone();
        let faults = faults.clone();
        let workload = workload.to_string();
        handles.push(std::thread::spawn(move || {
            let cfg = base_cfg(
                faults,
                RtTransport::Socket {
                    addr,
                    role: SockRole::Worker { index, workers },
                },
            );
            build_world(&workload, cfg).run()
        }));
    }
    let cfg = base_cfg(
        NetFaults::none(),
        RtTransport::Socket {
            addr,
            role: SockRole::Parent { workers },
        },
    );
    let result = build_world(workload, cfg).run();
    for h in handles {
        let w = h.join().expect("worker thread");
        assert!(!w.timed_out, "worker runtime timed out");
    }
    result
}

fn run_inproc(workload: &str, faults: NetFaults) -> RtResult {
    build_world(workload, base_cfg(faults, RtTransport::InProc)).run()
}

fn assert_clean(r: &RtResult, label: &str) {
    assert!(!r.timed_out, "{label}: timed out ({:?})", r.stats);
    assert!(r.panicked.is_empty(), "{label}: panics {:?}", r.panics);
    assert!(
        r.stragglers.is_empty(),
        "{label}: stragglers {:?}",
        r.stragglers
    );
}

/// In-proc (fault-free) vs socket (chaos): per-process merge-equivalent
/// committed logs, equal external output multisets.
fn assert_socket_matches_inproc(base: &RtResult, sock: &RtResult, label: &str) {
    assert_eq!(
        base.logs.keys().collect::<Vec<_>>(),
        sock.logs.keys().collect::<Vec<_>>(),
        "{label}: process sets differ"
    );
    for (p, log) in &base.logs {
        assert!(
            merge_equiv(log, &sock.logs[p]),
            "{label}: log of {p} not merge-equivalent\n base: {log:?}\n sock: {:?}",
            sock.logs[p]
        );
    }
    let multiset = |r: &RtResult| {
        let mut v: Vec<String> = r.external.iter().map(|(p, x)| format!("{p:?}:{x:?}")).collect();
        v.sort();
        v
    };
    assert_eq!(multiset(base), multiset(sock), "{label}: externals diverged");
}

#[test]
fn streaming_over_uds_with_chaos_matches_inproc() {
    let base = run_inproc("streaming", NetFaults::none());
    assert_clean(&base, "in-proc streaming");
    for seed in [11u64, 12] {
        let addr = fresh_uds(&format!("streaming-{seed}"));
        let sock = run_over_socket("streaming", chaos(seed), addr, 2);
        assert_clean(&sock, &format!("socket streaming seed {seed}"));
        assert_socket_matches_inproc(&base, &sock, &format!("streaming seed {seed}"));
        assert!(
            sock.stats.retransmits > 0 || sock.stats.drops_injected == 0,
            "seed {seed}: chaos dropped frames but nothing retransmitted"
        );
    }
}

#[test]
fn chain_over_uds_with_chaos_matches_inproc() {
    let base = run_inproc("chain", NetFaults::none());
    assert_clean(&base, "in-proc chain");
    for seed in [21u64, 22] {
        let addr = fresh_uds(&format!("chain-{seed}"));
        let sock = run_over_socket("chain", chaos(seed), addr, 2);
        assert_clean(&sock, &format!("socket chain seed {seed}"));
        assert_socket_matches_inproc(&base, &sock, &format!("chain seed {seed}"));
    }
}

#[test]
fn chain_split_three_ways_fault_free_matches_inproc() {
    // 4 pids over 3 workers: ranges 0..1, 1..2, 2..4 — every hop of the
    // chain crosses a worker boundary at least once.
    let base = run_inproc("chain", NetFaults::none());
    let addr = fresh_uds("chain-3w");
    let sock = run_over_socket("chain", NetFaults::none(), addr, 3);
    assert_clean(&sock, "socket chain 3 workers");
    assert_socket_matches_inproc(&base, &sock, "chain 3 workers");
}

#[test]
fn streaming_over_tcp_matches_inproc() {
    // Reserve a port by binding to :0, then release it for the parent.
    // (Small race, but loopback port reuse makes it practically safe.)
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").expect("probe port");
        l.local_addr().expect("local addr").port()
    };
    let addr = SockAddr::parse(&format!("tcp:127.0.0.1:{port}")).expect("tcp addr");
    let base = run_inproc("streaming", NetFaults::none());
    let sock = run_over_socket("streaming", NetFaults::none(), addr, 2);
    assert_clean(&sock, "socket streaming tcp");
    assert_socket_matches_inproc(&base, &sock, "streaming tcp");
}

#[test]
fn worker_crash_reports_its_pids_as_panicked() {
    // Two independent client→server pairs, split so each pair is local
    // to one worker: pids 0,1 on worker 0 (real), pids 2,3 on worker 1 —
    // which here is an impostor that completes the handshake and then
    // drops the connection (EOF without Bye = crashed worker).
    let addr = fresh_uds("crash");
    let workers = 2usize;
    let make_world = |cfg: RtConfig| {
        let mut w = RtWorld::new(cfg);
        w.add_process(PutLineClient::to(3, ProcessId(1)), true);
        w.add_process(Server::new("S0", 0), false);
        w.add_process(PutLineClient::to(3, ProcessId(3)), true);
        w.add_process(Server::new("S1", 0), false);
        w
    };

    let worker0 = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let cfg = base_cfg(
                NetFaults::none(),
                RtTransport::Socket {
                    addr,
                    role: SockRole::Worker { index: 0, workers },
                },
            );
            make_world(cfg).run()
        })
    };
    let impostor = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            use std::io::Write;
            let SockAddr::Uds(path) = &addr else {
                panic!("uds expected")
            };
            // Hand-rolled Hello{index:1, workers:2, n:4, lo:2, hi:4}:
            // u32le len | version | tag | five single-byte uvarints.
            let body = [1u8, 0, 1, 2, 4, 2, 4];
            let mut msg = (body.len() as u32).to_le_bytes().to_vec();
            msg.extend_from_slice(&body);
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            let mut s = loop {
                match std::os::unix::net::UnixStream::connect(path) {
                    Ok(s) => break s,
                    Err(e) if std::time::Instant::now() >= deadline => {
                        panic!("impostor connect: {e}")
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(25)),
                }
            };
            s.write_all(&msg).expect("impostor hello");
            // Wait for Start so worker 0 is definitely running, then crash.
            use std::io::Read;
            let mut buf = [0u8; 6];
            let _ = s.read(&mut buf);
            drop(s);
        })
    };

    let cfg = base_cfg(
        NetFaults::none(),
        RtTransport::Socket {
            addr,
            role: SockRole::Parent { workers },
        },
    );
    let parent = make_world(cfg).run();
    worker0.join().expect("worker 0");
    impostor.join().expect("impostor");

    assert!(
        !parent.timed_out,
        "a crashed worker must fail fast, not stall to run_timeout\n panicked: {:?}\n panics: {:?}\n logs: {:?}\n wall: {:?}",
        parent.panicked, parent.panics, parent.logs.keys().collect::<Vec<_>>(), parent.wall
    );
    assert_eq!(
        parent.panicked,
        vec![ProcessId(2), ProcessId(3)],
        "the impostor's pid range must be reported panicked: {:?}",
        parent.panics
    );
    for pid in [ProcessId(2), ProcessId(3)] {
        assert!(
            parent.panics[&pid].contains("connection"),
            "panic message should blame the connection: {:?}",
            parent.panics[&pid]
        );
    }
    // The healthy pair still committed.
    assert!(parent.logs.contains_key(&ProcessId(0)));
    assert!(parent.logs.contains_key(&ProcessId(1)));
}

/// Shared scenario for handshake-phase crashes: worker 0 is real and
/// hosts a self-contained client→server pair (pids 0,1); worker 1 is an
/// impostor that connects, writes `dying_bytes`, and drops the connection
/// *without ever completing a Hello*. Returns the parent's result.
fn run_with_handshake_impostor(tag: &str, dying_bytes: Vec<u8>) -> RtResult {
    let addr = fresh_uds(tag);
    let workers = 2usize;
    let make_world = |cfg: RtConfig| {
        let mut w = RtWorld::new(cfg);
        w.add_process(PutLineClient::to(3, ProcessId(1)), true);
        w.add_process(Server::new("S0", 0), false);
        w.add_process(PutLineClient::to(3, ProcessId(3)), true);
        w.add_process(Server::new("S1", 0), false);
        w
    };

    let worker0 = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let cfg = base_cfg(
                NetFaults::none(),
                RtTransport::Socket {
                    addr,
                    role: SockRole::Worker { index: 0, workers },
                },
            );
            make_world(cfg).run()
        })
    };
    let impostor = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            use std::io::Write;
            let SockAddr::Uds(path) = &addr else {
                panic!("uds expected")
            };
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            let mut s = loop {
                match std::os::unix::net::UnixStream::connect(path) {
                    Ok(s) => break s,
                    Err(e) if std::time::Instant::now() >= deadline => {
                        panic!("impostor connect: {e}")
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(25)),
                }
            };
            let _ = s.write_all(&dying_bytes);
            let _ = s.flush();
            drop(s); // dies mid-handshake: no Hello ever completes
        })
    };

    let cfg = base_cfg(
        NetFaults::none(),
        RtTransport::Socket {
            addr,
            role: SockRole::Parent { workers },
        },
    );
    let parent = make_world(cfg).run();
    worker0.join().expect("worker 0");
    impostor.join().expect("impostor");
    parent
}

fn assert_handshake_loss_contained(parent: &RtResult, label: &str) {
    assert!(
        !parent.timed_out,
        "{label}: a worker lost in the handshake must not stall the hub\n panicked: {:?}\n panics: {:?}\n wall: {:?}",
        parent.panicked, parent.panics, parent.wall
    );
    assert_eq!(
        parent.panicked,
        vec![ProcessId(2), ProcessId(3)],
        "{label}: the lost worker's pid range must be reported panicked: {:?}",
        parent.panics
    );
    for pid in [ProcessId(2), ProcessId(3)] {
        assert!(
            parent.panics[&pid].contains("handshake"),
            "{label}: panic message should blame the handshake: {:?}",
            parent.panics[&pid]
        );
    }
    // The healthy pair hosted by the surviving worker still committed.
    assert!(parent.logs.contains_key(&ProcessId(0)), "{label}: pid 0 log missing");
    assert!(parent.logs.contains_key(&ProcessId(1)), "{label}: pid 1 log missing");
}

#[test]
fn worker_killed_during_handshake_does_not_panic_hub() {
    // The impostor gets two bytes of a length prefix out before dying —
    // the parent used to `unwrap()` the missing connection and abort the
    // whole world; now it attributes pids 2,3 and finishes the rest.
    let parent = run_with_handshake_impostor("hskill", vec![0x03, 0x00]);
    assert_handshake_loss_contained(&parent, "mid-handshake kill");
}

#[test]
fn oversized_length_prefix_on_socket_path_is_connection_loss() {
    // Cap-boundary on the socket read path: a length prefix one past
    // `MAX_FRAME_BYTES` must be rejected by the shared header parser
    // (never allocated or read through), and the connection treated as a
    // lost worker like any other handshake death.
    let bogus = ((opcsp_core::MAX_FRAME_BYTES + 1) as u32).to_le_bytes().to_vec();
    let parent = run_with_handshake_impostor("hscap", bogus);
    assert_handshake_loss_contained(&parent, "oversized prefix");
}
