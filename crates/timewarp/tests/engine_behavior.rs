//! Behavioral tests of the Time Warp executive itself: rollback depth,
//! anti-message overtaking, GVT and fossil collection.

use opcsp_core::Value;
use opcsp_timewarp::{EventMsg, LogicalProcess, LpId, LpState, OutMsg, TwConfig, TwWorld};
use std::collections::BTreeMap;
use std::sync::Arc;

/// An LP that forwards each event to a peer one virtual tick later.
struct Forwarder {
    peer: Option<LpId>,
}

impl LogicalProcess for Forwarder {
    fn init(&self) -> LpState {
        LpState::new(Vec::<u64>::new())
    }

    fn on_event(&self, state: &mut LpState, ev: &EventMsg) -> Vec<OutMsg> {
        state.get_mut::<Vec<u64>>().push(ev.recv_ts);
        match self.peer {
            Some(p) => vec![OutMsg {
                to: p,
                recv_ts: ev.recv_ts + 1,
                payload: ev.payload.clone(),
            }],
            None => Vec::new(),
        }
    }
}

/// A source that pre-schedules events at given (virtual ts) values.
struct Source {
    to: LpId,
    times: Vec<u64>,
}

impl LogicalProcess for Source {
    fn init(&self) -> LpState {
        LpState::new(())
    }

    fn on_event(&self, _s: &mut LpState, _e: &EventMsg) -> Vec<OutMsg> {
        Vec::new()
    }

    fn initial_events(&self, _me: LpId) -> Vec<OutMsg> {
        self.times
            .iter()
            .map(|&t| OutMsg {
                to: self.to,
                recv_ts: t,
                payload: Value::Int(t as i64),
            })
            .collect()
    }
}

fn cfg_with_override(from: LpId, to: LpId, d: u64) -> TwConfig {
    let mut overrides = BTreeMap::new();
    overrides.insert((from, to), d);
    TwConfig {
        transit: 10,
        transit_overrides: overrides,
        ..TwConfig::default()
    }
}

#[test]
fn in_order_arrivals_never_roll_back() {
    let behaviors: Vec<Arc<dyn LogicalProcess>> = vec![
        Arc::new(Source {
            to: LpId(1),
            times: vec![1, 2, 3, 4],
        }),
        Arc::new(Forwarder { peer: None }),
    ];
    let r = TwWorld::new(TwConfig::default(), behaviors).run();
    assert_eq!(r.stats.rollbacks, 0);
    assert_eq!(r.stats.processed, 4);
    assert_eq!(r.states[&LpId(1)].get::<Vec<u64>>(), &vec![1, 2, 3, 4]);
}

#[test]
fn straggler_rolls_back_and_reprocesses_in_order() {
    // Two sources: the virtually-earlier events (1..=3 from LP0) arrive
    // *later* in wall time than LP1's (5..=7).
    let behaviors: Vec<Arc<dyn LogicalProcess>> = vec![
        Arc::new(Source {
            to: LpId(2),
            times: vec![1, 2, 3],
        }),
        Arc::new(Source {
            to: LpId(2),
            times: vec![5, 6, 7],
        }),
        Arc::new(Forwarder { peer: None }),
    ];
    let r = TwWorld::new(cfg_with_override(LpId(0), LpId(2), 500), behaviors).run();
    assert!(r.stats.stragglers > 0);
    assert!(r.stats.rollbacks > 0);
    assert!(r.stats.undone > 0);
    // Despite wall reordering, the final log is in virtual-time order.
    assert_eq!(
        r.states[&LpId(2)].get::<Vec<u64>>(),
        &vec![1, 2, 3, 5, 6, 7]
    );
    // Work was wasted: more processing than events.
    assert!(r.stats.processed > 6);
}

#[test]
fn rollback_cascades_through_anti_messages() {
    // LP1 forwards to LP2. LP1's straggler undoes sends already processed
    // by LP2 → anti-messages → LP2 rolls back too.
    let behaviors: Vec<Arc<dyn LogicalProcess>> = vec![
        Arc::new(Source {
            to: LpId(1),
            times: vec![10, 20],
        }),
        Arc::new(Forwarder {
            peer: Some(LpId(3)),
        }),
        Arc::new(Source {
            to: LpId(1),
            times: vec![5],
        }), // straggler source
        Arc::new(Forwarder { peer: None }),
    ];
    let mut overrides = BTreeMap::new();
    overrides.insert((LpId(2), LpId(1)), 400u64); // delay the ts=5 event
    let cfg = TwConfig {
        transit: 10,
        transit_overrides: overrides,
        ..TwConfig::default()
    };
    let r = TwWorld::new(cfg, behaviors).run();
    assert!(r.stats.anti_messages > 0, "{:?}", r.stats);
    // LP3's final log: forwarded events at 11, 21 plus straggler at 6 — in
    // virtual order.
    assert_eq!(r.states[&LpId(3)].get::<Vec<u64>>(), &vec![6, 11, 21]);
    // LP1's log ends in order.
    assert_eq!(r.states[&LpId(1)].get::<Vec<u64>>(), &vec![5, 10, 20]);
}

#[test]
fn gvt_and_fossil_collection_bound_memory() {
    let behaviors: Vec<Arc<dyn LogicalProcess>> = vec![
        Arc::new(Source {
            to: LpId(1),
            times: (1..=50).collect(),
        }),
        Arc::new(Forwarder { peer: None }),
    ];
    let mut w = TwWorld::new(TwConfig::default(), behaviors);
    // Drain the world manually? The public API runs to completion; build a
    // second world to sample GVT before running.
    let g0 = w.gvt();
    assert!(g0 <= 1, "before any processing, GVT is at the first event");
    let before = w.retained();
    w.fossil_collect(0);
    assert_eq!(
        w.retained(),
        before,
        "fossil collect below GVT=0 is a no-op"
    );
    let r = w.run();
    assert_eq!(r.stats.processed, 50);
}

#[test]
fn fossil_collection_after_progress_discards_history() {
    let behaviors: Vec<Arc<dyn LogicalProcess>> = vec![
        Arc::new(Source {
            to: LpId(1),
            times: (1..=20).collect(),
        }),
        Arc::new(Forwarder { peer: None }),
    ];
    // Fossil-collecting periodically is the engine user's job; here we
    // exercise the primitive directly on a populated world.
    let mut w = TwWorld::new(TwConfig::default(), behaviors);
    let before = w.retained();
    assert!(before > 0);
    w.fossil_collect(u64::MAX);
    assert!(
        w.retained() < before,
        "collection must discard input queue fossils"
    );
}

#[test]
fn deterministic_given_same_config() {
    let mk = || -> Vec<Arc<dyn LogicalProcess>> {
        vec![
            Arc::new(Source {
                to: LpId(2),
                times: vec![1, 4, 9],
            }),
            Arc::new(Source {
                to: LpId(2),
                times: vec![2, 3, 8],
            }),
            Arc::new(Forwarder { peer: None }),
        ]
    };
    let a = TwWorld::new(cfg_with_override(LpId(0), LpId(2), 123), mk()).run();
    let b = TwWorld::new(cfg_with_override(LpId(0), LpId(2), 123), mk()).run();
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.completion, b.completion);
    assert_eq!(
        a.states[&LpId(2)].get::<Vec<u64>>(),
        b.states[&LpId(2)].get::<Vec<u64>>()
    );
}

// ---------------------------------------------------------------------
// Lazy cancellation
// ---------------------------------------------------------------------

mod lazy {
    use super::*;
    use opcsp_timewarp::Cancellation;

    /// A forwarder whose output depends only on the event payload — a
    /// straggler that doesn't change earlier payloads regenerates
    /// identical messages, so lazy cancellation sends no anti-messages.
    #[test]
    fn lazy_avoids_anti_messages_when_outputs_unchanged() {
        let mk = |cancellation| {
            let behaviors: Vec<Arc<dyn LogicalProcess>> = vec![
                Arc::new(Source {
                    to: LpId(2),
                    times: vec![10, 20, 30],
                }),
                Arc::new(Source {
                    to: LpId(2),
                    times: vec![5],
                }), // straggler
                Arc::new(Forwarder {
                    peer: Some(LpId(3)),
                }),
                Arc::new(Forwarder { peer: None }),
            ];
            let mut overrides = BTreeMap::new();
            overrides.insert((LpId(1), LpId(2)), 500u64);
            let cfg = TwConfig {
                transit: 10,
                transit_overrides: overrides,
                cancellation,
                ..TwConfig::default()
            };
            TwWorld::new(cfg, behaviors).run()
        };
        let aggressive = mk(Cancellation::Aggressive);
        let lazy = mk(Cancellation::Lazy);
        assert!(aggressive.stats.rollbacks > 0);
        assert!(lazy.stats.rollbacks > 0);
        // The forwarder regenerates identical outputs for ts 10/20/30, so
        // lazy sends no anti-messages for them while aggressive does.
        assert!(aggressive.stats.anti_messages > 0);
        assert!(
            lazy.stats.anti_messages < aggressive.stats.anti_messages,
            "lazy {} vs aggressive {}",
            lazy.stats.anti_messages,
            aggressive.stats.anti_messages
        );
        assert!(lazy.stats.lazy_hits > 0);
        // Final state identical either way.
        assert_eq!(
            aggressive.states[&LpId(3)].get::<Vec<u64>>(),
            lazy.states[&LpId(3)].get::<Vec<u64>>()
        );
    }

    /// An LP whose outputs *do* change after a straggler (it forwards a
    /// running count): lazy cancellation must still converge to the same
    /// final state, sending anti-messages for the diverged outputs.
    struct CountingForwarder {
        peer: LpId,
    }

    impl LogicalProcess for CountingForwarder {
        fn init(&self) -> LpState {
            LpState::new(0i64)
        }

        fn on_event(&self, state: &mut LpState, ev: &EventMsg) -> Vec<OutMsg> {
            let count = state.get_mut::<i64>();
            *count += 1;
            vec![OutMsg {
                to: self.peer,
                recv_ts: ev.recv_ts + 1,
                payload: opcsp_core::Value::Int(*count),
            }]
        }
    }

    #[test]
    fn lazy_diverging_outputs_still_converge() {
        let mk = |cancellation| {
            let behaviors: Vec<Arc<dyn LogicalProcess>> = vec![
                Arc::new(Source {
                    to: LpId(2),
                    times: vec![10, 20],
                }),
                Arc::new(Source {
                    to: LpId(2),
                    times: vec![5],
                }), // straggler
                Arc::new(CountingForwarder { peer: LpId(3) }),
                Arc::new(Forwarder { peer: None }),
            ];
            let mut overrides = BTreeMap::new();
            overrides.insert((LpId(1), LpId(2)), 500u64);
            let cfg = TwConfig {
                transit: 10,
                transit_overrides: overrides,
                cancellation,
                ..TwConfig::default()
            };
            TwWorld::new(cfg, behaviors).run()
        };
        let aggressive = mk(Cancellation::Aggressive);
        let lazy = mk(Cancellation::Lazy);
        // Counts shift after the straggler: outputs diverge, so lazy must
        // send anti-messages for the stale ones.
        assert!(lazy.stats.anti_messages > 0);
        assert_eq!(
            aggressive.states[&LpId(3)].get::<Vec<u64>>(),
            lazy.states[&LpId(3)].get::<Vec<u64>>(),
            "both strategies must converge to the same committed log"
        );
    }
}
