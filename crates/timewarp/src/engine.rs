//! The Time Warp executive: optimistic processing in receive-timestamp
//! order with rollback, anti-messages, GVT and fossil collection.
//!
//! Faithful to Jefferson's scheme at the granularity the §5 comparison
//! needs: every LP processes its lowest-timestamped unprocessed event as
//! soon as it is idle (aggressive optimism); a straggler (arrival with
//! `recv_ts` below the LP's local virtual time) forces a rollback to the
//! checkpoint before that timestamp and sends anti-messages for the
//! outputs produced by the undone events; an anti-message annihilates its
//! positive twin, rolling the receiver back if the twin was already
//! processed.
//!
//! Wall-clock (the cost model) is simulated separately from virtual time:
//! processing an event costs `proc_cost`, message transit costs a
//! per-link wall latency. The contrast measured in experiment E6 is that
//! Time Warp's *total order* forces rollbacks for causally unrelated
//! stragglers, which the paper's partial-order protocol never does.

use crate::lp::{EventMsg, LogicalProcess, LpId, LpState, OutMsg as LpSend, Vt};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

/// Wall-clock time (cost model), distinct from virtual time.
pub type Wall = u64;

/// Cancellation strategy for invalidated outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Cancellation {
    /// Send anti-messages immediately on rollback (Jefferson's original).
    #[default]
    Aggressive,
    /// Hold the invalidated outputs; if re-execution regenerates an
    /// identical message, cancel it against the held one (no anti-message
    /// at all); only outputs that re-execution fails to regenerate are
    /// anti-messaged. Pays off when stragglers rarely change outputs.
    Lazy,
}

/// Executive configuration.
#[derive(Debug, Clone)]
pub struct TwConfig {
    /// Wall cost of processing one event.
    pub proc_cost: Wall,
    /// Default wall transit latency for messages.
    pub transit: Wall,
    /// Per-link overrides (used to create stragglers).
    pub transit_overrides: BTreeMap<(LpId, LpId), Wall>,
    /// Anti-message strategy.
    pub cancellation: Cancellation,
    /// Safety valve.
    pub max_events: u64,
}

impl Default for TwConfig {
    fn default() -> Self {
        TwConfig {
            proc_cost: 1,
            transit: 10,
            transit_overrides: BTreeMap::new(),
            cancellation: Cancellation::Aggressive,
            max_events: 2_000_000,
        }
    }
}

/// Run statistics — the E6 measurement surface.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TwStats {
    /// Events processed (including reprocessing after rollbacks).
    pub processed: u64,
    /// Events whose processing was undone.
    pub undone: u64,
    /// Rollback episodes.
    pub rollbacks: u64,
    /// Anti-messages sent.
    pub anti_messages: u64,
    /// Annihilations (anti met its twin before processing).
    pub annihilations: u64,
    /// Stragglers observed (positive arrivals below LVT).
    pub stragglers: u64,
    /// Total messages delivered (positive, non-annihilated).
    pub messages: u64,
    /// Lazy cancellation: regenerated outputs matched against held ones
    /// (no anti-message needed).
    pub lazy_hits: u64,
}

/// Result of a run.
#[derive(Debug)]
pub struct TwResult {
    pub completion: Wall,
    pub stats: TwStats,
    /// Final LP states for inspection.
    pub states: BTreeMap<LpId, LpState>,
    /// Per-LP committed event log: (recv_ts, payload) in processed order.
    pub logs: BTreeMap<LpId, Vec<(Vt, opcsp_core::Value)>>,
    pub truncated: bool,
}

struct LpRuntime {
    behavior: Arc<dyn LogicalProcess>,
    state: LpState,
    lvt: Vt,
    /// Received positive messages with a processed flag, kept sorted by
    /// (recv_ts, id).
    input: Vec<(EventMsg, bool)>,
    /// Anti-messages that arrived before their twins.
    pending_anti: Vec<EventMsg>,
    /// Checkpoints: state saved *before* processing the event at `Vt`.
    saved: Vec<(Vt, u64, LpState)>,
    /// Outputs tagged with (virtual time, originating event id).
    output: Vec<(Vt, u64, EventMsg)>,
    /// Committed-order log (rewound on rollback): (recv_ts, payload).
    log: Vec<(Vt, opcsp_core::Value)>,
    /// Wall time at which the LP is next free.
    next_free: Wall,
    /// Generation counter to cancel stale ProcessNext events.
    generation: u64,
    /// Lazy cancellation: invalidated outputs awaiting regeneration or a
    /// definitive divergence, tagged like `output`.
    held: Vec<(Vt, u64, EventMsg)>,
}

enum Ev {
    Arrive(EventMsg),
    ProcessNext { lp: LpId, generation: u64 },
}

/// The Time Warp world.
pub struct TwWorld {
    cfg: TwConfig,
    lps: Vec<LpRuntime>,
    queue: BinaryHeap<Reverse<(Wall, u64, u64)>>,
    payloads: BTreeMap<u64, Ev>,
    seq: u64,
    next_msg: u64,
    now: Wall,
    stats: TwStats,
    last_activity: Wall,
    events_handled: u64,
}

impl TwWorld {
    pub fn new(cfg: TwConfig, behaviors: Vec<Arc<dyn LogicalProcess>>) -> Self {
        let mut w = TwWorld {
            cfg,
            lps: Vec::new(),
            queue: BinaryHeap::new(),
            payloads: BTreeMap::new(),
            seq: 0,
            next_msg: 0,
            now: 0,
            stats: TwStats::default(),
            last_activity: 0,
            events_handled: 0,
        };
        for b in behaviors {
            w.lps.push(LpRuntime {
                state: b.init(),
                behavior: b,
                lvt: 0,
                input: Vec::new(),
                pending_anti: Vec::new(),
                saved: Vec::new(),
                output: Vec::new(),
                log: Vec::new(),
                next_free: 0,
                generation: 0,
                held: Vec::new(),
            });
        }
        // Seed initial events.
        for i in 0..w.lps.len() {
            let me = LpId(i as u32);
            let behavior = w.lps[i].behavior.clone();
            for s in behavior.initial_events(me) {
                w.emit(me, 0, u64::MAX, s);
            }
        }
        w
    }

    fn schedule(&mut self, t: Wall, ev: Ev) {
        let key = self.seq;
        self.seq += 1;
        self.payloads.insert(key, ev);
        self.queue.push(Reverse((t, key, key)));
    }

    fn transit(&self, from: LpId, to: LpId) -> Wall {
        self.cfg
            .transit_overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.cfg.transit)
    }

    /// Send a positive message produced by `from` at virtual time `vt`
    /// while processing event `eid`. Under lazy cancellation, a
    /// regenerated message identical to a held (invalidated-but-
    /// uncancelled) one from the same event is matched against it: the
    /// original stays valid at the receiver and nothing is sent.
    fn emit(&mut self, from: LpId, vt: Vt, eid: u64, s: LpSend) {
        let recv_ts = s.recv_ts.max(vt + 1);
        if self.cfg.cancellation == Cancellation::Lazy {
            let lp = &mut self.lps[from.0 as usize];
            if let Some(pos) = lp.held.iter().position(|(_, heid, m)| {
                *heid == eid && m.to == s.to && m.recv_ts == recv_ts && m.payload == s.payload
            }) {
                let (hvt, heid, m) = lp.held.remove(pos);
                lp.output.push((hvt, heid, m));
                self.stats.lazy_hits += 1;
                return;
            }
        }
        let msg = EventMsg {
            id: self.next_msg,
            from,
            to: s.to,
            send_ts: vt,
            recv_ts,
            payload: s.payload,
            anti: false,
        };
        self.next_msg += 1;
        self.lps[from.0 as usize]
            .output
            .push((vt, eid, msg.clone()));
        let d = self.transit(from, s.to);
        let at = self.now + d;
        self.schedule(at, Ev::Arrive(msg));
    }

    /// Run to quiescence. Under lazy cancellation, outputs still held when
    /// the queue drains are definitively divergent (their originating
    /// events were annihilated or never reprocessed): anti-message them
    /// and keep running until true quiescence.
    pub fn run(mut self) -> TwResult {
        let mut truncated = false;
        loop {
            while let Some(Reverse((t, key, _))) = self.queue.pop() {
                self.events_handled += 1;
                if self.events_handled > self.cfg.max_events {
                    truncated = true;
                    break;
                }
                self.now = t;
                match self.payloads.remove(&key).expect("payload") {
                    Ev::Arrive(msg) => self.handle_arrival(msg),
                    Ev::ProcessNext { lp, generation } => self.process_next(lp, generation),
                }
            }
            if truncated || !self.drain_all_holds() {
                break;
            }
        }
        let mut states = BTreeMap::new();
        let mut logs = BTreeMap::new();
        for (i, lp) in self.lps.into_iter().enumerate() {
            states.insert(LpId(i as u32), lp.state);
            logs.insert(LpId(i as u32), lp.log);
        }
        TwResult {
            completion: self.last_activity,
            stats: self.stats,
            states,
            logs,
            truncated,
        }
    }

    fn handle_arrival(&mut self, msg: EventMsg) {
        self.last_activity = self.now;
        let lp_idx = msg.to.0 as usize;
        if msg.anti {
            // Annihilate the positive twin.
            let lp = &mut self.lps[lp_idx];
            if let Some(pos) = lp.input.iter().position(|(m, _)| m.annihilates(&msg)) {
                let (_, processed) = lp.input[pos];
                let ts = lp.input[pos].0.recv_ts;
                lp.input.remove(pos);
                self.stats.annihilations += 1;
                if processed {
                    // The twin's effects must be undone.
                    self.rollback(msg.to, ts);
                }
                self.kick(msg.to);
            } else {
                // Anti overtook its twin: stash it.
                self.lps[lp_idx].pending_anti.push(msg);
            }
            return;
        }
        // Positive message: check the anti buffer first.
        {
            let lp = &mut self.lps[lp_idx];
            if let Some(pos) = lp.pending_anti.iter().position(|a| a.annihilates(&msg)) {
                lp.pending_anti.remove(pos);
                self.stats.annihilations += 1;
                return;
            }
        }
        self.stats.messages += 1;
        let straggler = msg.recv_ts < self.lps[lp_idx].lvt;
        let ts = msg.recv_ts;
        let lp = &mut self.lps[lp_idx];
        lp.input.push((msg, false));
        lp.input.sort_by_key(|(m, _)| (m.recv_ts, m.id));
        if straggler {
            self.stats.stragglers += 1;
            self.rollback(LpId(lp_idx as u32), ts);
        }
        self.kick(LpId(lp_idx as u32));
    }

    /// Schedule a ProcessNext if the LP has unprocessed work.
    fn kick(&mut self, id: LpId) {
        let lp = &mut self.lps[id.0 as usize];
        if lp.input.iter().any(|(_, done)| !done) {
            lp.generation += 1;
            let generation = lp.generation;
            let at = self.now.max(lp.next_free);
            self.schedule(at, Ev::ProcessNext { lp: id, generation });
        }
    }

    fn process_next(&mut self, id: LpId, generation: u64) {
        let lp_idx = id.0 as usize;
        {
            let lp = &self.lps[lp_idx];
            if lp.generation != generation {
                return; // superseded
            }
        }
        // Lowest unprocessed event.
        let pos = {
            let lp = &self.lps[lp_idx];
            lp.input.iter().position(|(_, done)| !done)
        };
        let Some(pos) = pos else { return };
        self.last_activity = self.now;
        let ev = self.lps[lp_idx].input[pos].0.clone();
        // Checkpoint before processing (state queue).
        {
            let lp = &mut self.lps[lp_idx];
            let snapshot = lp.state.clone();
            lp.saved.push((ev.recv_ts, ev.id, snapshot));
        }
        let behavior = self.lps[lp_idx].behavior.clone();
        let outs = {
            let lp = &mut self.lps[lp_idx];
            let outs = behavior.on_event(&mut lp.state, &ev);
            lp.lvt = ev.recv_ts;
            lp.input[pos].1 = true;
            lp.log.push((ev.recv_ts, ev.payload.clone()));
            lp.next_free = self.now + self.cfg.proc_cost;
            outs
        };
        self.stats.processed += 1;
        let vt = self.lps[lp_idx].lvt;
        let eid = ev.id;
        for s in outs {
            self.emit(id, vt, eid, s);
        }
        self.flush_diverged_holds(id, eid);
        // Continue with further work when free.
        let lp = &mut self.lps[lp_idx];
        if lp.input.iter().any(|(_, done)| !done) {
            lp.generation += 1;
            let generation = lp.generation;
            let at = lp.next_free;
            self.schedule(at, Ev::ProcessNext { lp: id, generation });
        }
    }

    /// Roll `id` back so every processed event with `recv_ts >= ts` is
    /// undone: restore the checkpoint, un-process inputs, send
    /// anti-messages for invalidated outputs.
    fn rollback(&mut self, id: LpId, ts: Vt) {
        let lp_idx = id.0 as usize;
        self.stats.rollbacks += 1;
        // Earliest checkpoint at or after ts.
        let cut = {
            let lp = &self.lps[lp_idx];
            lp.saved.iter().position(|(t, _, _)| *t >= ts)
        };
        let Some(cut) = cut else {
            return; // nothing processed at or after ts
        };
        let anti_to_send: Vec<EventMsg> = {
            let lp = &mut self.lps[lp_idx];
            let (restore_ts, restore_id, snapshot) = lp.saved[cut].clone();
            lp.state = snapshot;
            lp.saved.truncate(cut);
            lp.lvt = lp.saved.last().map(|(t, _, _)| *t).unwrap_or(0);
            // Un-process the undone inputs.
            let mut undone = 0;
            for (m, done) in lp.input.iter_mut() {
                if *done && (m.recv_ts, m.id) >= (restore_ts, restore_id) {
                    *done = false;
                    undone += 1;
                }
            }
            self.stats.undone += undone;
            // Rewind the committed log.
            let keep = lp.log.iter().take_while(|(t, _)| *t < ts).count();
            lp.log.truncate(keep);
            // Outputs produced at or after ts are invalid. Aggressive:
            // anti-message them now. Lazy: hold them, betting that
            // re-execution will regenerate identical messages.
            let lazy = self.cfg.cancellation == Cancellation::Lazy;
            let mut anti = Vec::new();
            let mut held = Vec::new();
            lp.output.retain(|(out_vt, eid, m)| {
                if *out_vt >= ts {
                    if lazy {
                        held.push((*out_vt, *eid, m.clone()));
                    } else {
                        let mut a = m.clone();
                        a.anti = true;
                        anti.push(a);
                    }
                    false
                } else {
                    true
                }
            });
            lp.held.extend(held);
            lp.generation += 1; // cancel in-flight processing
            anti
        };
        for a in anti_to_send {
            self.stats.anti_messages += 1;
            let d = self.transit(id, a.to);
            let at = self.now + d;
            self.schedule(at, Ev::Arrive(a));
        }
        self.kick(id);
    }

    /// Lazy cancellation: after re-processing event `eid`, any still-held
    /// outputs from that same event were not regenerated — definitively
    /// divergent. Held outputs whose send time has been passed by the
    /// LP's virtual time are divergent too.
    fn flush_diverged_holds(&mut self, id: LpId, eid: u64) {
        if self.cfg.cancellation != Cancellation::Lazy {
            return;
        }
        let lvt = self.lps[id.0 as usize].lvt;
        let mut anti = Vec::new();
        self.lps[id.0 as usize].held.retain(|(vt, heid, m)| {
            if *heid == eid || *vt < lvt {
                let mut a = m.clone();
                a.anti = true;
                anti.push(a);
                false
            } else {
                true
            }
        });
        for a in anti {
            self.stats.anti_messages += 1;
            let d = self.transit(id, a.to);
            let at = self.now + d;
            self.schedule(at, Ev::Arrive(a));
        }
    }

    /// End-of-run drain for lazy cancellation: anti-message every output
    /// still held anywhere. Returns true if anything was scheduled.
    fn drain_all_holds(&mut self) -> bool {
        if self.cfg.cancellation != Cancellation::Lazy {
            return false;
        }
        let mut scheduled = false;
        for i in 0..self.lps.len() {
            let id = LpId(i as u32);
            let held: Vec<_> = self.lps[i].held.drain(..).collect();
            for (_, _, m) in held {
                let mut a = m;
                a.anti = true;
                self.stats.anti_messages += 1;
                let d = self.transit(id, a.to);
                let at = self.now + d;
                self.schedule(at, Ev::Arrive(a));
                scheduled = true;
            }
        }
        scheduled
    }

    /// Global virtual time: the minimum of every LP's LVT and of every
    /// unprocessed/in-flight message timestamp. Events below GVT are
    /// stable; used by fossil collection.
    pub fn gvt(&self) -> Vt {
        let mut g = Vt::MAX;
        for lp in &self.lps {
            for (m, done) in &lp.input {
                if !done {
                    g = g.min(m.recv_ts);
                }
            }
        }
        for ev in self.payloads.values() {
            if let Ev::Arrive(m) = ev {
                g = g.min(m.recv_ts);
            }
        }
        if g == Vt::MAX {
            g = self.lps.iter().map(|l| l.lvt).max().unwrap_or(0);
        }
        g
    }

    /// Fossil collection: discard checkpoints, processed inputs and output
    /// records strictly below `gvt` (no rollback can ever reach them).
    pub fn fossil_collect(&mut self, gvt: Vt) {
        for lp in &mut self.lps {
            // Keep at least one checkpoint at or below gvt as the restore
            // base for a rollback exactly to gvt.
            let keep_from = lp.saved.iter().rposition(|(t, _, _)| *t < gvt).unwrap_or(0);
            lp.saved.drain(..keep_from);
            lp.input.retain(|(m, done)| !done || m.recv_ts >= gvt);
            lp.output.retain(|(vt, _, _)| *vt >= gvt);
        }
    }

    /// Total retained memory objects (checkpoint + queue entries) — used
    /// by the fossil-collection test.
    pub fn retained(&self) -> usize {
        self.lps
            .iter()
            .map(|l| l.saved.len() + l.input.len() + l.output.len())
            .sum()
    }
}

/// Convenience: build and run a world.
pub fn run(cfg: TwConfig, behaviors: Vec<Arc<dyn LogicalProcess>>) -> TwResult {
    TwWorld::new(cfg, behaviors).run()
}
