//! Workloads for the Time Warp baseline, mirroring the §5 argument:
//! "if two clients call a server then the server must process the calls
//! in the total order ... In a distributed or loosely coupled parallel
//! system ... it is not feasible to impose a total ordering upon the
//! computations."
//!
//! The two-client/one-server workload assigns ParaTran-style timestamps
//! (each client's k-th request at virtual time `base + k·think`). A wall
//! -clock skew on one client's link turns its requests into stragglers at
//! the server, forcing rollbacks of the other client's already-processed
//! (causally unrelated!) work.

use crate::engine::{Cancellation, TwConfig, TwResult, TwWorld, Wall};
use crate::lp::{EventMsg, LogicalProcess, LpId, LpState, OutMsg, Vt};
use opcsp_core::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A client that pre-schedules `n` requests to `server`, the k-th at
/// virtual time `base + k·think`.
pub struct TwClient {
    pub name: String,
    pub server: LpId,
    pub n: u32,
    pub base: Vt,
    pub think: Vt,
}

impl LogicalProcess for TwClient {
    fn init(&self) -> LpState {
        LpState::new(0u32)
    }

    fn on_event(&self, _state: &mut LpState, _ev: &EventMsg) -> Vec<OutMsg> {
        // Replies are absorbed.
        Vec::new()
    }

    fn initial_events(&self, me: LpId) -> Vec<OutMsg> {
        let _ = me;
        (0..self.n)
            .map(|k| OutMsg {
                to: self.server,
                recv_ts: self.base + (k as Vt) * self.think,
                payload: Value::record([
                    ("client".to_string(), Value::str(self.name.clone())),
                    ("k".to_string(), Value::Int(k as i64)),
                ]),
            })
            .collect()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A server that appends every request to its log state and replies.
pub struct TwServer {
    pub reply_to_clients: bool,
}

#[derive(Clone, Default)]
pub struct ServerLog {
    pub entries: Vec<Value>,
}

impl LogicalProcess for TwServer {
    fn init(&self) -> LpState {
        LpState::new(ServerLog::default())
    }

    fn on_event(&self, state: &mut LpState, ev: &EventMsg) -> Vec<OutMsg> {
        state
            .get_mut::<ServerLog>()
            .entries
            .push(ev.payload.clone());
        if self.reply_to_clients {
            vec![OutMsg {
                to: ev.from,
                recv_ts: ev.recv_ts + 1,
                payload: Value::Bool(true),
            }]
        } else {
            Vec::new()
        }
    }

    fn name(&self) -> &str {
        "server"
    }
}

/// Parameters of the two-client contention workload (experiment E6).
#[derive(Debug, Clone)]
pub struct TwoClientOpts {
    pub n_per_client: u32,
    /// Virtual think time between a client's requests.
    pub think: Vt,
    /// Wall transit latency (both links, before skew).
    pub transit: Wall,
    /// Extra wall latency on client A's link — creates stragglers.
    pub skew: Wall,
    pub reply: bool,
    /// Anti-message strategy.
    pub cancellation: Cancellation,
}

impl Default for TwoClientOpts {
    fn default() -> Self {
        TwoClientOpts {
            n_per_client: 8,
            think: 10,
            transit: 20,
            skew: 0,
            reply: true,
            cancellation: Cancellation::Aggressive,
        }
    }
}

/// LP ids used by the workload.
pub const CLIENT_A: LpId = LpId(0);
pub const CLIENT_B: LpId = LpId(1);
pub const SERVER: LpId = LpId(2);

/// Build and run the two-client workload under Time Warp.
pub fn run_two_clients(opts: TwoClientOpts) -> TwResult {
    let mut overrides = BTreeMap::new();
    if opts.skew > 0 {
        overrides.insert((CLIENT_A, SERVER), opts.transit + opts.skew);
    }
    let cfg = TwConfig {
        transit: opts.transit,
        transit_overrides: overrides,
        cancellation: opts.cancellation,
        ..TwConfig::default()
    };
    // Interleaved virtual times: A at even slots, B at odd.
    let behaviors: Vec<Arc<dyn LogicalProcess>> = vec![
        Arc::new(TwClient {
            name: "A".into(),
            server: SERVER,
            n: opts.n_per_client,
            base: 1,
            think: opts.think,
        }),
        Arc::new(TwClient {
            name: "B".into(),
            server: SERVER,
            n: opts.n_per_client,
            base: 1 + opts.think / 2,
            think: opts.think,
        }),
        Arc::new(TwServer {
            reply_to_clients: opts.reply,
        }),
    ];
    TwWorld::new(cfg, behaviors).run()
}

/// The server's final committed log (request payloads in virtual-time
/// order) — used to check Time Warp's determinism under any skew.
pub fn server_log(result: &TwResult) -> Vec<Value> {
    result.states[&SERVER].get::<ServerLog>().entries.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_skew_no_rollbacks() {
        let r = run_two_clients(TwoClientOpts::default());
        assert!(!r.truncated);
        assert_eq!(r.stats.rollbacks, 0);
        assert_eq!(r.stats.stragglers, 0);
        assert_eq!(server_log(&r).len(), 16);
    }

    #[test]
    fn skew_forces_rollbacks_of_unrelated_work() {
        let r = run_two_clients(TwoClientOpts {
            skew: 300,
            ..TwoClientOpts::default()
        });
        assert!(!r.truncated);
        assert!(r.stats.stragglers > 0, "skewed link must create stragglers");
        assert!(r.stats.rollbacks > 0);
        assert!(
            r.stats.anti_messages > 0,
            "undone replies need anti-messages"
        );
        assert_eq!(
            server_log(&r).len(),
            16,
            "all requests processed exactly once"
        );
    }

    #[test]
    fn final_server_log_is_identical_regardless_of_skew() {
        // Time Warp's whole point: the total order is enforced, so the
        // committed log is the same whatever the wall-clock skew — at the
        // cost of the rollbacks counted above.
        let a = server_log(&run_two_clients(TwoClientOpts::default()));
        let b = server_log(&run_two_clients(TwoClientOpts {
            skew: 300,
            ..TwoClientOpts::default()
        }));
        let c = server_log(&run_two_clients(TwoClientOpts {
            skew: 77,
            ..TwoClientOpts::default()
        }));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn rollbacks_grow_with_skew() {
        let mut prev = 0;
        for skew in [0u64, 100, 400] {
            let r = run_two_clients(TwoClientOpts {
                skew,
                ..TwoClientOpts::default()
            });
            assert!(
                r.stats.rollbacks >= prev,
                "skew {skew}: rollbacks {} < previous {prev}",
                r.stats.rollbacks
            );
            prev = r.stats.rollbacks;
        }
        assert!(prev > 0);
    }
}
