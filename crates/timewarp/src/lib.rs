//! # opcsp-timewarp — a Time Warp baseline (§5 related work)
//!
//! Jefferson's Time Warp imposes a single totally ordered virtual time on
//! the whole system; the paper argues (§5) that for distributed systems of
//! independently developed processes a *partial* order — discovered
//! dynamically from communication — is the right model, because a total
//! order forces rollbacks for causally unrelated stragglers.
//!
//! This crate implements a classic Time Warp executive (state queues,
//! input/output queues, anti-messages, GVT, fossil collection) over the
//! same cost model as `opcsp-sim`, plus the two-client contention workload
//! that experiment E6 uses to quantify the difference.

pub mod engine;
pub mod lp;
pub mod workloads;

pub use engine::{run, Cancellation, TwConfig, TwResult, TwStats, TwWorld, Wall};
pub use lp::{EventMsg, LogicalProcess, LpId, LpState, OutMsg, Vt};
pub use workloads::{run_two_clients, server_log, TwClient, TwServer, TwoClientOpts};
