//! Logical processes for the Time Warp baseline (§5 related work).
//!
//! Jefferson's Time Warp \[4\] imposes a single, totally ordered *global
//! virtual time*: every event carries a send time and a receive time
//! assigned by the application, and each logical process must handle its
//! events in receive-timestamp order, rolling back when a straggler
//! arrives. This crate implements that executive so the paper's §5
//! comparison — partial-order optimism vs. total-order optimism — can be
//! measured on identical workloads.

use opcsp_core::Value;
use std::any::Any;
use std::fmt;

/// Virtual (simulation) time — the application-assigned total order.
pub type Vt = u64;

/// Logical-process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LpId(pub u32);

impl fmt::Display for LpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LP{}", self.0)
    }
}

/// A timestamped event message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventMsg {
    pub id: u64,
    pub from: LpId,
    pub to: LpId,
    /// Virtual time at which it was sent.
    pub send_ts: Vt,
    /// Virtual time at which it must be processed by the receiver.
    pub recv_ts: Vt,
    pub payload: Value,
    /// Anti-message flag (annihilates its positive twin on arrival).
    pub anti: bool,
}

impl EventMsg {
    /// The annihilation partner test: same id, opposite signs.
    pub fn annihilates(&self, other: &EventMsg) -> bool {
        self.id == other.id && self.anti != other.anti
    }
}

/// An outgoing message requested by an LP handler: the executive fills in
/// identity and sign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutMsg {
    pub to: LpId,
    /// Receive timestamp must exceed the sender's current virtual time.
    pub recv_ts: Vt,
    pub payload: Value,
}

/// Cloneable dynamic LP state (same pattern as `opcsp_sim::BehaviorState`).
pub struct LpState(Box<dyn StateClone>);

trait StateClone: Any + std::marker::Send {
    fn clone_box(&self) -> Box<dyn StateClone>;
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any + Clone + std::marker::Send> StateClone for T {
    fn clone_box(&self) -> Box<dyn StateClone> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl LpState {
    pub fn new<T: Any + Clone + std::marker::Send>(v: T) -> Self {
        LpState(Box::new(v))
    }

    pub fn get<T: Any>(&self) -> &T {
        self.0
            .as_any()
            .downcast_ref::<T>()
            .expect("LP state type mismatch")
    }

    pub fn get_mut<T: Any>(&mut self) -> &mut T {
        self.0
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("LP state type mismatch")
    }
}

impl Clone for LpState {
    fn clone(&self) -> Self {
        LpState(self.0.clone_box())
    }
}

impl fmt::Debug for LpState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("LpState(..)")
    }
}

/// A Time Warp logical process: a deterministic event handler over
/// cloneable state.
pub trait LogicalProcess: Send + Sync {
    fn init(&self) -> LpState;

    /// Handle one event at its receive timestamp; return messages to send.
    fn on_event(&self, state: &mut LpState, ev: &EventMsg) -> Vec<OutMsg>;

    /// Events this LP schedules for itself at startup (workload sources).
    fn initial_events(&self, me: LpId) -> Vec<OutMsg> {
        let _ = me;
        Vec::new()
    }

    fn name(&self) -> &str {
        "lp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lp_state_round_trip_and_clone() {
        let mut st = LpState::new(5u64);
        *st.get_mut::<u64>() += 1;
        let c = st.clone();
        *st.get_mut::<u64>() += 1;
        assert_eq!(*st.get::<u64>(), 7);
        assert_eq!(*c.get::<u64>(), 6);
    }

    #[test]
    fn annihilation_requires_same_id_opposite_sign() {
        let m = EventMsg {
            id: 9,
            from: LpId(0),
            to: LpId(1),
            send_ts: 1,
            recv_ts: 2,
            payload: Value::Unit,
            anti: false,
        };
        let mut a = m.clone();
        a.anti = true;
        assert!(m.annihilates(&a));
        assert!(!m.annihilates(&m.clone()));
        let mut other = a.clone();
        other.id = 10;
        assert!(!m.annihilates(&other));
    }
}
