//! # opcsp-workloads — scenario builders shared by tests, benches, examples
//!
//! Each module reconstructs a scenario from the paper or a parameterized
//! workload for the benchmark harness:
//!
//! - [`update_write`] — Figures 1–5: the Update/Write client with database
//!   and filesystem servers.
//! - [`streaming`] — §1's PutLine call-streaming client (E1/E2/E3/E8).
//! - [`two_clients`] — Figures 6–7: two optimistically parallelized
//!   processes with PRECEDENCE resolution and cycle detection.
//! - [`chain`] — depth-k optimistic forwarding pipelines (rollback-depth
//!   and PRECEDENCE-stress experiments).
//! - [`contention`] — two independent clients sharing one server (the §5
//!   Time Warp comparison workload, E6).
//! - [`fan_in`] — P producers streaming into one consumer (multi-writer
//!   guard-tag reuse; the interner-hit workload).
//! - [`contention_sweep`] — phased conflict-rate ramp on a hot server
//!   (E12: where every static retry limit loses and adaptive tracks the
//!   per-phase oracle).
//! - [`replicated_kv`] — the flagship workload: optimistic parallel
//!   state-machine replication, R replicas fed by an open-loop Zipf
//!   client load, with guesses standing in for the optimistic delivery
//!   order (E14).
//! - [`servers`] — reusable server behaviors.

pub mod chain;
pub mod contention;
pub mod contention_sweep;
pub mod fan_in;
pub mod replicated_kv;
pub mod servers;
pub mod streaming;
pub mod two_clients;
pub mod update_write;
