//! A depth-`k` pipeline of *optimistic forwarders*: each hop services a
//! call by forking — S1 calls the next hop and verifies success, while S2
//! replies success upstream immediately and loops to serve the next
//! request. This applies the call-streaming idea at every hop, so an item
//! flows through the whole chain in one direction without waiting for any
//! round trip; the commit wave follows behind.
//!
//! A failure injected at the terminal server causes a value fault at the
//! last hop whose ABORT cascades back through every dependent hop — the
//! rollback-depth experiment, and a stress test of the PRECEDENCE
//! machinery (each hop's guess awaits the downstream hop's guesses).

use crate::servers::{reply_label, Server};
use crate::streaming::PutLineClient;
use opcsp_core::{CoreConfig, DataKind, ProcessId, Value};
use opcsp_sim::{
    Behavior, BehaviorState, Effect, LatencyModel, Resume, SimBuilder, SimConfig, SimResult,
};
use std::collections::BTreeSet;
use std::sync::Arc;

/// A server that speculatively acknowledges upstream before its downstream
/// call completes.
pub struct OptimisticForwarder {
    pub name: String,
    pub downstream: ProcessId,
    pub compute: u64,
}

#[derive(Clone)]
enum FwdPc {
    Idle,
    Forked { payload: Value, reply_to: String },
    AwaitDown { reply_to: String },
    Joining { reply_to: String, ok: bool },
}

impl Behavior for OptimisticForwarder {
    fn init(&self) -> BehaviorState {
        BehaviorState::new(FwdPc::Idle)
    }

    fn step(&self, state: &mut BehaviorState, resume: Resume) -> Effect {
        let pc = state.get_mut::<FwdPc>();
        match (pc.clone(), resume) {
            (FwdPc::Idle, Resume::Start | Resume::Continue) => Effect::Receive,
            (FwdPc::Idle, Resume::Msg(env)) => match env.kind {
                DataKind::Call(_) => {
                    *pc = FwdPc::Forked {
                        payload: env.payload.clone(),
                        reply_to: reply_label(&env.label),
                    };
                    Effect::Fork {
                        site: 1,
                        guesses: vec![("ok".into(), Value::Bool(true))],
                    }
                }
                _ => Effect::Receive,
            },
            // S1: forward downstream and verify.
            (FwdPc::Forked { payload, reply_to }, Resume::ForkLeft | Resume::ForkDenied) => {
                *pc = FwdPc::AwaitDown { reply_to };
                Effect::call(self.downstream, payload, "Cf")
            }
            // S2 (speculative): acknowledge upstream and serve on.
            (FwdPc::Forked { reply_to, .. }, Resume::ForkRight { .. }) => {
                *pc = FwdPc::Idle;
                Effect::reply(Value::Bool(true), reply_to)
            }
            (FwdPc::AwaitDown { reply_to }, Resume::Msg(ret)) => {
                let ok = ret.payload.is_true();
                *pc = FwdPc::Joining { reply_to, ok };
                Effect::JoinLeft {
                    actual: vec![("ok".into(), Value::Bool(ok))],
                }
            }
            // Sequential S2 after an abort or in pessimistic mode: the
            // truthful reply.
            (FwdPc::Joining { reply_to, ok }, Resume::JoinSequential) => {
                *pc = FwdPc::Idle;
                Effect::reply(Value::Bool(ok), reply_to)
            }
            (_, r) => panic!("{}: unexpected resume {r:?}", self.name),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Chain scenario parameters.
#[derive(Debug, Clone)]
pub struct ChainOpts {
    /// Number of forwarding hops between client and terminal server.
    pub depth: u32,
    /// Number of items the client pushes.
    pub n: u32,
    pub latency: u64,
    /// Item values the terminal server rejects.
    pub fail_items: BTreeSet<u32>,
    pub optimism: bool,
    pub core: CoreConfig,
}

impl Default for ChainOpts {
    fn default() -> Self {
        ChainOpts {
            depth: 3,
            n: 4,
            latency: 20,
            fail_items: BTreeSet::new(),
            optimism: true,
            core: CoreConfig::default(),
        }
    }
}

/// The engine config [`run_chain`] derives from the scenario options —
/// exposed so schedule exploration can vary it while keeping the world.
pub fn chain_config(opts: &ChainOpts) -> SimConfig {
    SimConfig {
        core: opts.core.clone(),
        optimism: opts.optimism,
        latency: LatencyModel::fixed(opts.latency),
        ..SimConfig::default()
    }
}

/// Build and run the chain world under an explicit engine config (the
/// schedule explorer's runner).
pub fn run_chain_cfg(opts: &ChainOpts, cfg: &SimConfig) -> SimResult {
    let mut b = SimBuilder::new(cfg.clone());
    b.add_process(PutLineClient::to(opts.n, ProcessId(1)));
    for hop in 1..=opts.depth {
        b.add_process(OptimisticForwarder {
            name: format!("Hop{hop}"),
            downstream: ProcessId(hop + 1),
            compute: 1,
        });
    }
    let fails = Arc::new(opts.fail_items.clone());
    b.add_process(Server::new("Terminal", 1).with_reply(move |v| {
        let i = v.as_int().unwrap_or(-1);
        Value::Bool(i >= 0 && !fails.contains(&(i as u32)))
    }));
    b.build().run()
}

/// Client is process 0; hops are 1..=depth; terminal server is depth+1.
pub fn run_chain(opts: ChainOpts) -> SimResult {
    let cfg = chain_config(&opts);
    run_chain_cfg(&opts, &cfg)
}

/// The terminal server's process id for a given depth.
pub fn terminal(depth: u32) -> ProcessId {
    ProcessId(depth + 1)
}
