//! Contention sweep — the workload where a static retry limit `L` is
//! provably wrong at both extremes (E12).
//!
//! One client streams calls to a hot shared server whose *conflict rate
//! ramps over phases*: a low-contention phase (every call succeeds), a
//! high-contention phase (every call fails — each guess is a value fault),
//! then a recovery phase (success again). The server does real work per
//! call (`server_compute`), so wasted speculation consumes the contended
//! resource instead of hiding in network gaps:
//!
//! * `Pessimistic` / `L = 0` loses the low phases: no pipelining, every
//!   call waits its full round trip.
//! * Any static `L ≥ 1` streams the first phase but burns its whole budget
//!   in the high phase (no commit ever resets the site), leaving the site
//!   **permanently pessimistic** — it loses the entire recovery phase even
//!   though contention is long gone.
//! * The adaptive controller (`core::speculation`) deepens in phase one,
//!   collapses to cooloff under thrash, and probes its way back to full
//!   streaming in the recovery phase.
//!
//! Phase boundaries are observed from the *committed* timeline: the client
//! emits an `Effect::External` marker at each boundary, and external
//! outputs only release when their guards empty — so per-phase durations
//! measure committed progress, speculative or not.

use crate::servers::Server;
use crate::streaming::{CLIENT, SERVER};
use opcsp_core::{CoreConfig, ProcessId, Value};
use opcsp_sim::{
    Behavior, BehaviorState, Effect, LatencyModel, Resume, SimBuilder, SimConfig, SimResult, VTime,
};
use std::sync::Arc;

/// One segment of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phase {
    /// Calls issued in this phase.
    pub calls: u32,
    /// Every call in this phase fails (a value fault at the client's
    /// join); `false` = every call succeeds.
    pub fail: bool,
}

/// Scenario parameters. The default is the E12 shape: low → high → low
/// with a server compute cost that makes wasted speculation expensive.
#[derive(Debug, Clone)]
pub struct SweepOpts {
    pub phases: Vec<Phase>,
    /// One-way network latency (ticks in sim, ms-equivalent in rt).
    pub latency: u64,
    /// Server compute per call — the contended resource.
    pub server_compute: u64,
    pub optimism: bool,
    pub core: CoreConfig,
}

impl Default for SweepOpts {
    fn default() -> Self {
        SweepOpts {
            phases: vec![
                Phase {
                    calls: 48,
                    fail: false,
                },
                Phase {
                    calls: 16,
                    fail: true,
                },
                Phase {
                    calls: 96,
                    fail: false,
                },
            ],
            latency: 10,
            server_compute: 30,
            optimism: true,
            core: CoreConfig::default(),
        }
    }
}

impl SweepOpts {
    pub fn total_calls(&self) -> u32 {
        self.phases.iter().map(|p| p.calls).sum()
    }

    /// Call indices at which each phase starts, plus the end: `P + 1`
    /// boundaries for `P` phases.
    pub fn boundaries(&self) -> Vec<u32> {
        let mut out = vec![0];
        let mut acc = 0;
        for p in &self.phases {
            acc += p.calls;
            out.push(acc);
        }
        out
    }

    /// Does call `i` fail? (Pure function of the phase table — the same
    /// decision on both engines.)
    pub fn call_fails(&self, i: u32) -> bool {
        let mut acc = 0;
        for p in &self.phases {
            acc += p.calls;
            if i < acc {
                return p.fail;
            }
        }
        false
    }
}

/// The sweeping client: a tally-style streamer (continues on failure, one
/// fork site for the whole run) that emits an external phase marker at
/// every boundary.
pub struct SweepClient {
    /// Phase-start boundaries plus the end (see [`SweepOpts::boundaries`]).
    pub boundaries: Arc<Vec<u32>>,
    pub server: ProcessId,
}

#[derive(Clone)]
struct SwState {
    i: u32,
    n: u32,
    ok: bool,
    good: i64,
    bad: i64,
    /// Next entry of `boundaries` to emit a marker for.
    next_marker: usize,
    pc: SwPc,
}

#[derive(Clone)]
enum SwPc {
    Top,
    Marker,
    Forked,
    Await,
    Joining,
    Finished,
}

impl SweepClient {
    fn top(&self, st: &mut SwState) -> Effect {
        if st.next_marker < self.boundaries.len() && st.i == self.boundaries[st.next_marker] {
            // Phase boundary: emit the marker, then resume the loop. The
            // marker is an external output, so it releases only when the
            // emitting thread's guard empties — committed time.
            st.pc = SwPc::Marker;
            return Effect::External {
                payload: Value::str(format!("phase{}", st.next_marker)),
            };
        }
        if st.i < st.n {
            st.pc = SwPc::Forked;
            Effect::Fork {
                site: 1,
                guesses: vec![("ok".into(), Value::Bool(true))],
            }
        } else {
            st.pc = SwPc::Finished;
            Effect::Done
        }
    }

    fn s2(&self, st: &mut SwState) -> Effect {
        if st.ok {
            st.good += 1;
        } else {
            st.bad += 1;
        }
        st.i += 1;
        self.top(st)
    }
}

impl Behavior for SweepClient {
    fn init(&self) -> BehaviorState {
        BehaviorState::new(SwState {
            i: 0,
            n: *self.boundaries.last().expect("at least one boundary"),
            ok: true,
            good: 0,
            bad: 0,
            next_marker: 0,
            pc: SwPc::Top,
        })
    }

    fn step(&self, state: &mut BehaviorState, resume: Resume) -> Effect {
        let st = state.get_mut::<SwState>();
        match (&st.pc, resume) {
            (SwPc::Top, Resume::Start) => self.top(st),
            (SwPc::Marker, Resume::Continue) => {
                st.next_marker += 1;
                self.top(st)
            }
            (SwPc::Forked, Resume::ForkLeft | Resume::ForkDenied) => {
                st.pc = SwPc::Await;
                Effect::call(
                    self.server,
                    Value::Int(st.i as i64),
                    format!("C{}", st.i + 1),
                )
            }
            (SwPc::Forked, Resume::ForkRight { guesses }) => {
                st.ok = guesses
                    .iter()
                    .find(|(k, _)| k == "ok")
                    .map(|(_, v)| v.is_true())
                    .unwrap_or(false);
                self.s2(st)
            }
            (SwPc::Await, Resume::Msg(env)) => {
                st.ok = env.payload.is_true();
                st.pc = SwPc::Joining;
                Effect::JoinLeft {
                    actual: vec![("ok".into(), Value::Bool(st.ok))],
                }
            }
            (SwPc::Joining, Resume::JoinSequential) => self.s2(st),
            (_, r) => panic!("SweepClient: unexpected resume {r:?}"),
        }
    }

    fn name(&self) -> &str {
        "SweepClient"
    }
}

fn sweep_server(opts: &SweepOpts) -> Server {
    let table = opts.clone();
    Server::new("HotServer", opts.server_compute).with_reply(move |line| {
        let i = line.as_int().unwrap_or(-1);
        Value::Bool(i >= 0 && !table.call_fails(i as u32))
    })
}

/// A completed sweep with its committed phase timeline.
#[derive(Debug)]
pub struct SweepOutcome {
    pub result: SimResult,
    pub phases: Vec<Phase>,
    /// Committed release time of each boundary marker (`P + 1` entries).
    pub marker_times: Vec<VTime>,
}

impl SweepOutcome {
    /// Committed duration of each phase.
    pub fn phase_durations(&self) -> Vec<VTime> {
        self.marker_times
            .windows(2)
            .map(|w| w[1].saturating_sub(w[0]))
            .collect()
    }

    /// Committed throughput of each phase, in calls per kilotick.
    pub fn phase_throughputs(&self) -> Vec<f64> {
        self.phase_durations()
            .iter()
            .zip(&self.phases)
            .map(|(d, p)| {
                if *d == 0 {
                    0.0
                } else {
                    p.calls as f64 * 1000.0 / *d as f64
                }
            })
            .collect()
    }
}

/// Build and run the sweep on the simulator.
pub fn run_contention_sweep(opts: SweepOpts) -> SweepOutcome {
    let cfg = SimConfig {
        core: opts.core.clone(),
        optimism: opts.optimism,
        latency: LatencyModel::fixed(opts.latency),
        ..SimConfig::default()
    };
    let mut b = SimBuilder::new(cfg);
    let c = b.add_process(SweepClient {
        boundaries: Arc::new(opts.boundaries()),
        server: SERVER,
    });
    let s = b.add_process(sweep_server(&opts));
    debug_assert_eq!((c, s), (CLIENT, SERVER));
    let result = b.build().run();
    let marker_times: Vec<VTime> = result
        .external
        .iter()
        .filter(|(_, pid, v)| {
            *pid == CLIENT && matches!(v, Value::Str(s) if s.starts_with("phase"))
        })
        .map(|(t, _, _)| *t)
        .collect();
    SweepOutcome {
        result,
        phases: opts.phases,
        marker_times,
    }
}

/// The same world on the real-thread runtime (for the sim-vs-rt
/// differential: policy changes scheduling, never semantics, so committed
/// logs must stay merge-equivalent whatever the controller decides).
pub fn rt_sweep_world(opts: &SweepOpts, cfg: opcsp_rt::RtConfig) -> opcsp_rt::RtWorld {
    let mut w = opcsp_rt::RtWorld::new(cfg);
    let c = w.add_process(
        SweepClient {
            boundaries: Arc::new(opts.boundaries()),
            server: SERVER,
        },
        true,
    );
    let s = w.add_process(sweep_server(opts), false);
    debug_assert_eq!((c, s), (CLIENT, SERVER));
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markers_commit_once_per_boundary_in_order() {
        let opts = SweepOpts {
            phases: vec![
                Phase {
                    calls: 6,
                    fail: false,
                },
                Phase {
                    calls: 4,
                    fail: true,
                },
                Phase {
                    calls: 6,
                    fail: false,
                },
            ],
            latency: 10,
            server_compute: 5,
            ..SweepOpts::default()
        };
        let out = run_contention_sweep(opts);
        assert!(out.result.unresolved.is_empty());
        assert_eq!(out.marker_times.len(), 4, "P+1 boundary markers");
        assert!(
            out.marker_times.windows(2).all(|w| w[0] <= w[1]),
            "markers release in phase order: {:?}",
            out.marker_times
        );
        // Theorem 1: rolled-back speculative emissions never duplicate.
        let markers: Vec<&Value> = out
            .result
            .external
            .iter()
            .filter(|(_, p, _)| *p == CLIENT)
            .map(|(_, _, v)| v)
            .collect();
        assert_eq!(markers.len(), 4);
    }

    #[test]
    fn call_fails_follows_the_phase_table() {
        let opts = SweepOpts::default();
        assert!(!opts.call_fails(0));
        assert!(!opts.call_fails(47));
        assert!(opts.call_fails(48));
        assert!(opts.call_fails(63));
        assert!(!opts.call_fails(64));
        assert!(!opts.call_fails(159));
        assert_eq!(opts.total_calls(), 160);
        assert_eq!(opts.boundaries(), vec![0, 48, 64, 160]);
    }
}
