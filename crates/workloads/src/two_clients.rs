//! Two optimistically parallelized processes (Figures 6 and 7).
//!
//! Figure 6 (success): X forks `x1` and Z forks `z1`. X's right thread
//! sends `M1{x1}` to Z's left thread, so `z1`'s commit comes to depend on
//! `x1`: Z broadcasts `PRECEDENCE(z1, {x1})` and waits. When `x1` commits,
//! `z1` commits too, and W — which received `M2{z1}` from Z's right
//! thread — finally releases its buffered display output.
//!
//! Figure 7 (cycle): X's left thread calls Y while Z's right thread sends
//! `M1{z1}` to Y; if M1 contaminates Y before it replies, X's left guard
//! ends as `{z1}`. Symmetrically Z's left guard ends as `{x1}` (via W and
//! `M2{x1}`). The crossing PRECEDENCE messages close the cycle
//! `z1 → x1 → z1`; both guesses abort, Y and W roll back, and both
//! processes re-execute sequentially.

use crate::servers::{DisplaySink, Server};
use opcsp_core::{ProcessId, Value};
use opcsp_sim::{
    Behavior, BehaviorState, Effect, LatencyModel, Resume, SimBuilder, SimConfig, SimResult,
};

pub const X: ProcessId = ProcessId(0);
pub const Y: ProcessId = ProcessId(1);
pub const Z: ProcessId = ProcessId(2);
pub const W: ProcessId = ProcessId(3);

// ---------------------------------------------------------------------
// Figure 6
// ---------------------------------------------------------------------

/// Figure 6's X: S1 = call Y; S2 = send M1 to Z.
pub struct Fig6X;

#[derive(Clone)]
enum F6XPc {
    Init,
    Forked,
    AwaitR1,
    Joining,
    SentM1,
}

impl Behavior for Fig6X {
    fn init(&self) -> BehaviorState {
        BehaviorState::new(F6XPc::Init)
    }

    fn step(&self, state: &mut BehaviorState, resume: Resume) -> Effect {
        let pc = state.get_mut::<F6XPc>();
        match (pc.clone(), resume) {
            (F6XPc::Init, Resume::Start) => {
                *pc = F6XPc::Forked;
                Effect::Fork {
                    site: 1,
                    guesses: vec![],
                }
            }
            (F6XPc::Forked, Resume::ForkLeft | Resume::ForkDenied) => {
                *pc = F6XPc::AwaitR1;
                Effect::call(Y, Value::Int(1), "C1")
            }
            (F6XPc::Forked, Resume::ForkRight { .. }) => {
                *pc = F6XPc::SentM1;
                Effect::send(Z, Value::str("m1-data"), "M1")
            }
            (F6XPc::AwaitR1, Resume::Msg(_)) => {
                *pc = F6XPc::Joining;
                Effect::JoinLeft { actual: vec![] }
            }
            (F6XPc::Joining, Resume::JoinSequential) => {
                *pc = F6XPc::SentM1;
                Effect::send(Z, Value::str("m1-data"), "M1")
            }
            (F6XPc::SentM1, Resume::Continue) => Effect::Done,
            (_, r) => panic!("Fig6X: unexpected resume {r:?}"),
        }
    }

    fn name(&self) -> &str {
        "Fig6X"
    }
}

/// Figure 6's Z: S1 = receive M1, then call W; S2 = local computation,
/// then send M2 to W.
///
/// The S2 computation delay keeps the speculative M2 from overtaking the
/// S1 call at W (which would contaminate W's reply with z1 and turn the
/// scenario into a self time fault — a Figure 7 variant instead).
pub struct Fig6Z {
    pub s2_compute: u64,
}

#[derive(Clone)]
enum F6ZPc {
    Init,
    Forked,
    AwaitM1,
    AwaitR2,
    Joining,
    S2Compute,
    SentM2,
}

impl Behavior for Fig6Z {
    fn init(&self) -> BehaviorState {
        BehaviorState::new(F6ZPc::Init)
    }

    fn step(&self, state: &mut BehaviorState, resume: Resume) -> Effect {
        let pc = state.get_mut::<F6ZPc>();
        match (pc.clone(), resume) {
            (F6ZPc::Init, Resume::Start) => {
                *pc = F6ZPc::Forked;
                Effect::Fork {
                    site: 1,
                    guesses: vec![],
                }
            }
            (F6ZPc::Forked, Resume::ForkLeft | Resume::ForkDenied) => {
                *pc = F6ZPc::AwaitM1;
                Effect::Receive
            }
            // S2, speculative or sequential: compute, then notify W.
            (F6ZPc::Forked, Resume::ForkRight { .. })
            | (F6ZPc::Joining, Resume::JoinSequential) => {
                *pc = F6ZPc::S2Compute;
                Effect::Compute {
                    cost: self.s2_compute,
                }
            }
            (F6ZPc::AwaitM1, Resume::Msg(_m1)) => {
                *pc = F6ZPc::AwaitR2;
                Effect::call(W, Value::Int(2), "C2")
            }
            (F6ZPc::AwaitR2, Resume::Msg(_)) => {
                *pc = F6ZPc::Joining;
                Effect::JoinLeft { actual: vec![] }
            }
            (F6ZPc::S2Compute, Resume::Continue) => {
                *pc = F6ZPc::SentM2;
                Effect::send(W, Value::str("m2-data"), "M2")
            }
            (F6ZPc::SentM2, Resume::Continue) => Effect::Done,
            (_, r) => panic!("Fig6Z: unexpected resume {r:?}"),
        }
    }

    fn name(&self) -> &str {
        "Fig6Z"
    }
}

/// Build and run the Figure 6 scenario.
///
/// Y's service time is slow (3d) so that z1's join happens while x1 is
/// still unresolved — opening the PRECEDENCE window; Z's S2 computation
/// (3d) keeps the speculative M2 behind the S1 call at W.
pub fn run_fig6(optimism: bool, d: u64) -> SimResult {
    let cfg = SimConfig {
        optimism,
        latency: LatencyModel::fixed(d),
        ..SimConfig::default()
    };
    let mut b = SimBuilder::new(cfg);
    let x = b.add_process(Fig6X);
    let y = b.add_process(Server::new("Y", 3 * d));
    let z = b.add_process(Fig6Z { s2_compute: 3 * d });
    let w = b.add_process(DisplaySink::new("W"));
    debug_assert_eq!((x, y, z, w), (X, Y, Z, W));
    b.build().run()
}

// ---------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------

/// Figure 7 client: S1 = call `server`; S2 = send M to `peer_server`.
/// X calls Y and sends M2 to W; Z calls W and sends M1 to Y. With the
/// right timing the one-way sends contaminate the servers before they
/// reply, creating the cross dependency.
pub struct Fig7Client {
    pub name: String,
    pub server: ProcessId,
    pub peer_server: ProcessId,
    pub call_label: String,
    pub send_label: String,
}

#[derive(Clone)]
enum F7Pc {
    Init,
    Forked,
    AwaitReturn,
    Joining,
    Sent,
}

impl Behavior for Fig7Client {
    fn init(&self) -> BehaviorState {
        BehaviorState::new(F7Pc::Init)
    }

    fn step(&self, state: &mut BehaviorState, resume: Resume) -> Effect {
        let pc = state.get_mut::<F7Pc>();
        match (pc.clone(), resume) {
            (F7Pc::Init, Resume::Start) => {
                *pc = F7Pc::Forked;
                Effect::Fork {
                    site: 1,
                    guesses: vec![],
                }
            }
            (F7Pc::Forked, Resume::ForkLeft | Resume::ForkDenied) => {
                *pc = F7Pc::AwaitReturn;
                Effect::call(self.server, Value::Int(0), self.call_label.clone())
            }
            (F7Pc::Forked, Resume::ForkRight { .. }) => {
                *pc = F7Pc::Sent;
                Effect::send(
                    self.peer_server,
                    Value::str("spec"),
                    self.send_label.clone(),
                )
            }
            (F7Pc::AwaitReturn, Resume::Msg(_)) => {
                *pc = F7Pc::Joining;
                Effect::JoinLeft { actual: vec![] }
            }
            (F7Pc::Joining, Resume::JoinSequential) => {
                *pc = F7Pc::Sent;
                Effect::send(
                    self.peer_server,
                    Value::str("spec"),
                    self.send_label.clone(),
                )
            }
            (F7Pc::Sent, Resume::Continue) => Effect::Done,
            (_, r) => panic!("{}: unexpected resume {r:?}", self.name),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A server whose service time is long enough that a one-way send can slip
/// in between receiving a call and replying — use compute cost ≫ latency
/// asymmetry to force the Figure 7 contamination.
pub fn run_fig7(optimism: bool, d: u64) -> SimResult {
    // The speculative sends (Z's M1 → Y, X's M2 → W) travel on faster
    // links than the calls, so each server consumes the contaminating send
    // before servicing the call and its reply carries the foreign guess —
    // the cross-dependency of Figure 7.
    let latency = LatencyModel::per_link(d)
        .link(Z, Y, d / 2)
        .link(X, W, d / 2)
        .build();
    let cfg = SimConfig {
        optimism,
        latency,
        ..SimConfig::default()
    };
    let mut b = SimBuilder::new(cfg);
    let x = b.add_process(Fig7Client {
        name: "Fig7X".into(),
        server: Y,
        peer_server: W,
        call_label: "C1".into(),
        send_label: "M2".into(),
    });
    let y = b.add_process(Server::new("Y", 1));
    let z = b.add_process(Fig7Client {
        name: "Fig7Z".into(),
        server: W,
        peer_server: Y,
        call_label: "C2".into(),
        send_label: "M1".into(),
    });
    let w = b.add_process(Server::new("W", 1));
    debug_assert_eq!((x, y, z, w), (X, Y, Z, W));
    b.build().run()
}
