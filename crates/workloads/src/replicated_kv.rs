//! Replicated KV — the flagship workload: optimistic parallel
//! state-machine replication (Marandi & Pedone, arXiv 1404.6721) built
//! from the paper's guess/rollback protocol.
//!
//! `R` replicas each hold an in-memory key→value store and apply a global
//! command log in position order. Commands are sequenced by a single
//! sequencer process; clients are an open-loop load generator with
//! configurable inter-arrival gap, Zipf key skew, and read/write mix.
//!
//! The optimistic delivery order is encoded as a *guess*: each client
//! issues its command to the sequencer with [`Effect::CallThenFork`],
//! guessing the position the sequencer will assign (first command: the
//! client's own index; afterwards: last position + client count — the
//! round-robin interleaving that spontaneous order produces under uniform
//! latency). The right thread immediately broadcasts `Apply{pos, cmd}` to
//! every replica under the guess's guard and paces the next arrival, so a
//! correct guess streams commands without waiting for the sequencer's
//! round trip. A wrong guess (jitter or chaos perturbed the arrival
//! order) is a value fault at the join: the speculative broadcast is
//! retracted through the existing abort machinery, replicas roll back any
//! state derived from it, and the sequential re-execution re-broadcasts
//! with the actual position — exactly optimistic SMR's "execute in the
//! optimistic order, roll back on misordering".
//!
//! The pessimistic baseline is the same world under
//! [`opcsp_core::SpeculationPolicy::Pessimistic`]: `CallThenFork` degrades to a
//! blocking call, so every client waits a full sequencer round trip per
//! command and no rollback ever happens.
//!
//! Safety oracle (the SMR property): committed replica stores are
//! identical, committed read results are identical sequences across
//! replicas, and every replica applied the full contiguous position range
//! — see [`check_replica_agreement`]. Used by experiment E14 and the
//! `tests/replicated_kv.rs` sim-vs-rt differentials.

use opcsp_core::{CoreConfig, DataKind, ProcessId, Value};
use opcsp_sim::{
    reply_label, Behavior, BehaviorState, Effect, LatencyModel, Resume, SimBuilder, SimConfig,
    SimResult, VTime,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Scenario parameters for the replicated-KV experiments.
#[derive(Debug, Clone)]
pub struct KvOpts {
    /// Number of replicas (`R`).
    pub replicas: u32,
    /// Number of load-generating clients (`C`).
    pub clients: u32,
    /// Commands issued per client.
    pub ops_per_client: u32,
    /// Open-loop inter-arrival gap (virtual-time compute units between
    /// consecutive commands of one client).
    pub gap: u64,
    /// One-way network latency (base when jittered).
    pub latency: u64,
    /// Uniform jitter spread (0 = fixed latency). Jitter perturbs the
    /// arrival order at the sequencer — the misguess knob.
    pub jitter: u64,
    pub seed: u64,
    /// Key-space size for the generated commands.
    pub keys: u32,
    /// Zipf skew exponent `s` (0 = uniform; 0.99 = classic YCSB skew).
    pub zipf_s: f64,
    /// Writes per 1000 commands; the rest are reads.
    pub write_per_mille: u32,
    pub optimism: bool,
    pub core: CoreConfig,
    pub fork_timeout: VTime,
    /// Sequencer compute per command (position assignment cost).
    pub seq_compute: u64,
    /// Replica compute per received Apply (state-machine apply cost).
    pub replica_compute: u64,
}

impl Default for KvOpts {
    fn default() -> Self {
        KvOpts {
            replicas: 3,
            clients: 4,
            ops_per_client: 8,
            gap: 20,
            latency: 50,
            jitter: 0,
            seed: 1,
            keys: 16,
            zipf_s: 0.99,
            write_per_mille: 500,
            optimism: true,
            core: CoreConfig::default(),
            fork_timeout: 100_000,
            seq_compute: 1,
            replica_compute: 1,
        }
    }
}

impl KvOpts {
    /// Total committed commands a complete run must apply on every replica.
    pub fn total_ops(&self) -> u32 {
        self.clients * self.ops_per_client
    }
}

/// Process layout: clients occupy `0..clients`, then the sequencer, then
/// the replicas.
pub fn sequencer(opts: &KvOpts) -> ProcessId {
    ProcessId(opts.clients)
}

pub fn replica(opts: &KvOpts, r: u32) -> ProcessId {
    ProcessId(opts.clients + 1 + r)
}

pub fn replica_pids(opts: &KvOpts) -> Vec<ProcessId> {
    (0..opts.replicas).map(|r| replica(opts, r)).collect()
}

// ---------------------------------------------------------------------
// Deterministic command generation (Zipf keys, read/write mix)
// ---------------------------------------------------------------------

/// One generated command: a read of `key`, or a write of `put` to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvCmd {
    pub key: u32,
    pub put: Option<i64>,
}

fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Cumulative Zipf(s) distribution over `keys` ranks — precomputed once
/// per world so every draw is a binary search.
pub fn zipf_cdf(keys: u32, s: f64) -> Arc<Vec<f64>> {
    let keys = keys.max(1);
    let mut w: Vec<f64> = (1..=keys).map(|i| 1.0 / (i as f64).powf(s)).collect();
    let total: f64 = w.iter().sum();
    let mut acc = 0.0;
    for x in w.iter_mut() {
        acc += *x / total;
        *x = acc;
    }
    Arc::new(w)
}

/// The deterministic command a given `(client, op)` issues under `seed` —
/// a splitmix-style hash drives both the Zipf key draw and the
/// read/write decision, so every engine rebuilds the identical load.
pub fn kv_command(seed: u64, cdf: &[f64], write_per_mille: u32, client: u32, op: u32) -> KvCmd {
    let h = mix64(seed ^ (((client as u64) << 32) | (op as u64 + 1)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    let key = (cdf.partition_point(|&c| c < u) as u32).min(cdf.len() as u32 - 1);
    let put = if mix64(h) % 1000 < write_per_mille as u64 {
        // A distinct, reproducible value per (client, op).
        Some(((client as i64) << 20) | (op as i64 + 1))
    } else {
        None
    };
    KvCmd { key, put }
}

// ---------------------------------------------------------------------
// Behaviors
// ---------------------------------------------------------------------

/// Open-loop client `index`: for each op, `CallThenFork` the sequencer
/// guessing the assigned position, broadcast `Apply{pos, cmd}` to every
/// replica from the speculative right thread, pace `gap`, repeat.
pub struct KvClient {
    pub index: u32,
    pub clients: u32,
    pub n: u32,
    pub gap: u64,
    pub seq: ProcessId,
    pub replicas: Vec<ProcessId>,
    pub seed: u64,
    pub write_per_mille: u32,
    pub cdf: Arc<Vec<f64>>,
}

#[derive(Clone)]
struct KvClState {
    op: u32,
    /// Position of the current op (guessed on the right thread, actual on
    /// the left/sequential path) — also feeds the next op's guess.
    pos: i64,
    bcast_next: usize,
    pc: KvClPc,
}

#[derive(Clone)]
enum KvClPc {
    Top,
    Await,
    Joining,
    Bcast,
    Pace,
    Finished,
}

impl KvClient {
    fn top(&self, st: &mut KvClState) -> Effect {
        if st.op < self.n {
            // First command: spontaneous order assigns client j position j.
            // Afterwards: one full round of C clients between our commands.
            let guess = if st.op == 0 {
                self.index as i64
            } else {
                st.pos + self.clients as i64
            };
            st.pc = KvClPc::Await;
            Effect::CallThenFork {
                to: self.seq,
                payload: Value::Int(st.op as i64),
                label: format!("C{}", st.op + 1),
                site: 1,
                guesses: vec![("pos".into(), Value::Int(guess))],
            }
        } else {
            st.pc = KvClPc::Finished;
            Effect::Done
        }
    }

    fn apply_payload(&self, st: &KvClState) -> Value {
        let cmd = kv_command(self.seed, &self.cdf, self.write_per_mille, self.index, st.op);
        Value::record([
            ("pos".to_string(), Value::Int(st.pos)),
            ("key".to_string(), Value::str(format!("k{}", cmd.key))),
            (
                "op".to_string(),
                Value::str(if cmd.put.is_some() { "put" } else { "get" }),
            ),
            ("val".to_string(), Value::Int(cmd.put.unwrap_or(0))),
        ])
    }

    /// Broadcast the current command to each replica in turn, then pace.
    fn bcast(&self, st: &mut KvClState) -> Effect {
        if st.bcast_next < self.replicas.len() {
            let to = self.replicas[st.bcast_next];
            st.bcast_next += 1;
            st.pc = KvClPc::Bcast;
            Effect::Send {
                to,
                payload: self.apply_payload(st),
                label: "A".into(),
            }
        } else {
            st.pc = KvClPc::Pace;
            Effect::Compute { cost: self.gap }
        }
    }
}

impl Behavior for KvClient {
    fn init(&self) -> BehaviorState {
        BehaviorState::new(KvClState {
            op: 0,
            pos: 0,
            bcast_next: 0,
            pc: KvClPc::Top,
        })
    }

    fn step(&self, state: &mut BehaviorState, resume: Resume) -> Effect {
        let st = state.get_mut::<KvClState>();
        match (&st.pc, resume) {
            (KvClPc::Top, Resume::Start) => self.top(st),
            // Right thread: adopt the guessed position and stream the
            // broadcast under its guard.
            (KvClPc::Await, Resume::ForkRight { guesses }) => {
                st.pos = guesses
                    .iter()
                    .find(|(k, _)| k == "pos")
                    .and_then(|(_, v)| v.as_int())
                    .unwrap_or(-1);
                st.bcast_next = 0;
                self.bcast(st)
            }
            // Left thread (or pessimistic): the sequencer's assignment.
            (KvClPc::Await, Resume::Msg(env)) => {
                let actual = env.payload.as_int().unwrap_or(-1);
                st.pos = actual;
                st.pc = KvClPc::Joining;
                Effect::JoinLeft {
                    actual: vec![("pos".into(), Value::Int(actual))],
                }
            }
            // Misguess (or baseline): re-broadcast with the actual position.
            (KvClPc::Joining, Resume::JoinSequential) => {
                st.bcast_next = 0;
                self.bcast(st)
            }
            (KvClPc::Bcast, Resume::Continue) => self.bcast(st),
            (KvClPc::Pace, Resume::Continue) => {
                st.op += 1;
                self.top(st)
            }
            (_, r) => panic!("KvClient{}: unexpected resume {r:?}", self.index),
        }
    }

    fn name(&self) -> &str {
        "KvClient"
    }
}

/// The sequencer: assigns the next log position to each command call, in
/// arrival order. Its counter is ordinary speculative process state — a
/// retracted (orphaned) call rolls the assignment back with everything
/// else, so committed positions are exactly `0..total`.
pub struct Sequencer {
    pub total: u32,
    pub compute: u64,
}

#[derive(Clone)]
struct SeqState {
    next: i64,
    replied: u32,
    pc: SeqPc,
}

#[derive(Clone)]
enum SeqPc {
    Idle,
    Respond { label: String },
}

impl Behavior for Sequencer {
    fn init(&self) -> BehaviorState {
        BehaviorState::new(SeqState {
            next: 0,
            replied: 0,
            pc: SeqPc::Idle,
        })
    }

    fn step(&self, state: &mut BehaviorState, resume: Resume) -> Effect {
        let st = state.get_mut::<SeqState>();
        match (st.pc.clone(), resume) {
            (SeqPc::Idle, Resume::Start | Resume::Continue) => {
                if st.replied >= self.total {
                    Effect::Done
                } else {
                    Effect::Receive
                }
            }
            (SeqPc::Idle, Resume::Msg(env)) => match env.kind {
                DataKind::Call(_) => {
                    st.pc = SeqPc::Respond {
                        label: reply_label(&env.label),
                    };
                    Effect::Compute { cost: self.compute }
                }
                _ => Effect::Receive,
            },
            (SeqPc::Respond { label }, Resume::Continue) => {
                let pos = st.next;
                st.next += 1;
                st.replied += 1;
                st.pc = SeqPc::Idle;
                Effect::reply(Value::Int(pos), label)
            }
            (_, r) => panic!("Sequencer: unexpected resume {r:?}"),
        }
    }

    fn name(&self) -> &str {
        "Sequencer"
    }
}

/// A replica: applies `Apply{pos, cmd}` records to its store strictly in
/// position order, buffering out-of-order arrivals. Reads emit their
/// result as committed external output (`{pos, key, val}` — no replica
/// id, so cross-replica agreement is payload equality); after the final
/// position a `{store, applied}` digest is emitted. A speculative
/// misordered Apply may be consumed transiently — the message's guard
/// rolls the replica back when the guess aborts, so no panics or asserts
/// here may depend on speculative state.
pub struct Replica {
    pub name: String,
    pub total: u32,
    pub compute: u64,
}

impl Replica {
    pub fn new(name: impl Into<String>, total: u32, compute: u64) -> Self {
        Replica {
            name: name.into(),
            total,
            compute,
        }
    }
}

#[derive(Clone)]
struct RepState {
    store: BTreeMap<String, i64>,
    next_pos: i64,
    pending: BTreeMap<i64, Value>,
    emit: Vec<Value>,
    pc: RepPc,
}

#[derive(Clone)]
enum RepPc {
    Idle,
    Applying,
    Emitting,
}

impl Replica {
    /// Drain every in-order pending command into the store, queueing the
    /// externals it produces.
    fn drain(&self, st: &mut RepState) {
        while let Some(cmd) = st.pending.remove(&st.next_pos) {
            let key = cmd
                .field("key")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string();
            let is_put = cmd.field("op").and_then(|v| v.as_str()) == Some("put");
            if is_put {
                let val = cmd.field("val").and_then(|v| v.as_int()).unwrap_or(0);
                st.store.insert(key, val);
            } else {
                let val = st.store.get(&key).copied().unwrap_or(0);
                st.emit.push(Value::record([
                    ("pos".to_string(), Value::Int(st.next_pos)),
                    ("key".to_string(), Value::str(key)),
                    ("val".to_string(), Value::Int(val)),
                ]));
            }
            st.next_pos += 1;
        }
        if st.next_pos == self.total as i64 {
            // Final digest: the committed store plus the applied count.
            st.emit.push(Value::record([
                (
                    "store".to_string(),
                    Value::record(
                        st.store
                            .iter()
                            .map(|(k, v)| (k.clone(), Value::Int(*v)))
                            .collect::<Vec<_>>(),
                    ),
                ),
                ("applied".to_string(), Value::Int(st.next_pos)),
            ]));
            st.next_pos += 1; // emit the digest exactly once
        }
    }

    fn settle(&self, st: &mut RepState) -> Effect {
        if !st.emit.is_empty() {
            let v = st.emit.remove(0);
            st.pc = RepPc::Emitting;
            return Effect::External { payload: v };
        }
        if st.next_pos > self.total as i64 {
            Effect::Done
        } else {
            st.pc = RepPc::Idle;
            Effect::Receive
        }
    }
}

impl Behavior for Replica {
    fn init(&self) -> BehaviorState {
        BehaviorState::new(RepState {
            store: BTreeMap::new(),
            next_pos: 0,
            pending: BTreeMap::new(),
            emit: Vec::new(),
            pc: RepPc::Idle,
        })
    }

    fn step(&self, state: &mut BehaviorState, resume: Resume) -> Effect {
        let st = state.get_mut::<RepState>();
        match (st.pc.clone(), resume) {
            (RepPc::Idle, Resume::Start | Resume::Continue) => self.settle(st),
            (RepPc::Idle, Resume::Msg(env)) => {
                if let Some(pos) = env.payload.field("pos").and_then(|v| v.as_int()) {
                    // A stale or colliding position in a speculative line
                    // is tolerated — the abort machinery rewinds it.
                    if pos >= st.next_pos {
                        st.pending.insert(pos, env.payload);
                    }
                }
                st.pc = RepPc::Applying;
                Effect::Compute { cost: self.compute }
            }
            (RepPc::Applying, Resume::Continue) => {
                self.drain(st);
                self.settle(st)
            }
            (RepPc::Emitting, Resume::Continue) => self.settle(st),
            (_, r) => panic!("{}: unexpected resume {r:?}", self.name),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

// ---------------------------------------------------------------------
// World builders
// ---------------------------------------------------------------------

/// The engine config [`run_replicated_kv`] derives from the scenario
/// options — exposed so schedule exploration can vary it while keeping
/// the same world.
pub fn kv_config(opts: &KvOpts) -> SimConfig {
    let latency = if opts.jitter > 0 {
        LatencyModel::jitter(opts.latency, opts.jitter, opts.seed)
    } else {
        LatencyModel::fixed(opts.latency)
    };
    SimConfig {
        core: opts.core.clone(),
        optimism: opts.optimism,
        latency,
        fork_timeout: opts.fork_timeout,
        ..SimConfig::default()
    }
}

fn client_behavior(opts: &KvOpts, cdf: &Arc<Vec<f64>>, j: u32) -> KvClient {
    KvClient {
        index: j,
        clients: opts.clients,
        n: opts.ops_per_client,
        gap: opts.gap,
        seq: sequencer(opts),
        replicas: replica_pids(opts),
        seed: opts.seed,
        write_per_mille: opts.write_per_mille,
        cdf: cdf.clone(),
    }
}

/// Build and run the replicated-KV world under an explicit engine config
/// (the schedule explorer's runner).
pub fn run_replicated_kv_cfg(opts: &KvOpts, cfg: &SimConfig) -> SimResult {
    let cdf = zipf_cdf(opts.keys, opts.zipf_s);
    let mut b = SimBuilder::new(cfg.clone());
    for j in 0..opts.clients {
        b.add_process(client_behavior(opts, &cdf, j));
    }
    let s = b.add_process(Sequencer {
        total: opts.total_ops(),
        compute: opts.seq_compute,
    });
    debug_assert_eq!(s, sequencer(opts));
    for r in 0..opts.replicas {
        let p = b.add_process(Replica::new(
            format!("R{r}"),
            opts.total_ops(),
            opts.replica_compute,
        ));
        debug_assert_eq!(p, replica(opts, r));
    }
    b.build().run()
}

/// Build and run the replicated-KV scenario.
pub fn run_replicated_kv(opts: KvOpts) -> SimResult {
    let cfg = kv_config(&opts);
    run_replicated_kv_cfg(&opts, &cfg)
}

/// Build the same world on the real-thread runtime (threaded or sharded
/// executor, in-proc or socket transport — all via `cfg`). Clients are
/// the processes whose completion ends the run.
pub fn rt_kv_world(opts: &KvOpts, cfg: opcsp_rt::RtConfig) -> opcsp_rt::RtWorld {
    let cdf = zipf_cdf(opts.keys, opts.zipf_s);
    let mut w = opcsp_rt::RtWorld::new(cfg);
    for j in 0..opts.clients {
        w.add_process(client_behavior(opts, &cdf, j), true);
    }
    let s = w.add_process(
        Sequencer {
            total: opts.total_ops(),
            compute: opts.seq_compute,
        },
        false,
    );
    debug_assert_eq!(s, sequencer(opts));
    for r in 0..opts.replicas {
        let p = w.add_process(
            Replica::new(format!("R{r}"), opts.total_ops(), opts.replica_compute),
            false,
        );
        debug_assert_eq!(p, replica(opts, r));
    }
    w
}

// ---------------------------------------------------------------------
// SMR safety oracle
// ---------------------------------------------------------------------

/// What a complete, agreeing run committed (taken from replica 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvSummary {
    /// Commands applied per replica (must equal `opts.total_ops()`).
    pub applied: i64,
    /// Committed read results, in log order.
    pub gets: usize,
    /// The committed store.
    pub store: BTreeMap<String, i64>,
}

/// Group committed external payloads by replica, preserving emission
/// order. Works for both engines: pass `(pid, payload)` pairs from
/// `SimResult::external` or `RtResult::external`.
pub fn replica_streams(
    opts: &KvOpts,
    externals: impl IntoIterator<Item = (ProcessId, Value)>,
) -> Vec<Vec<Value>> {
    let mut streams = vec![Vec::new(); opts.replicas as usize];
    let base = opts.clients + 1;
    for (pid, v) in externals {
        let idx = pid.0.wrapping_sub(base);
        if (idx as usize) < streams.len() {
            streams[idx as usize].push(v);
        }
    }
    streams
}

/// The SMR safety property: every replica committed the same read
/// results in the same order, applied the full contiguous position range,
/// and finished with an identical store. `Err` explains the first
/// divergence found.
pub fn check_replica_agreement(opts: &KvOpts, streams: &[Vec<Value>]) -> Result<KvSummary, String> {
    if streams.len() != opts.replicas as usize {
        return Err(format!(
            "expected {} replica streams, got {}",
            opts.replicas,
            streams.len()
        ));
    }
    let total = opts.total_ops() as i64;
    let mut summary: Option<KvSummary> = None;
    for (r, stream) in streams.iter().enumerate() {
        let Some((digest, gets)) = stream.split_last() else {
            return Err(format!("replica {r} committed no externals"));
        };
        let applied = digest.field("applied").and_then(|v| v.as_int()).unwrap_or(-1);
        if applied != total {
            return Err(format!(
                "replica {r} applied {applied} of {total} commands (digest {digest:?})"
            ));
        }
        let Some(Value::Record(fields)) = digest.field("store").cloned() else {
            return Err(format!("replica {r}: no store digest in {digest:?}"));
        };
        let store: BTreeMap<String, i64> = fields
            .iter()
            .map(|(k, v)| (k.clone(), v.as_int().unwrap_or(0)))
            .collect();
        // Reads must be strictly position-ordered within one replica.
        let mut last = -1i64;
        for g in gets {
            let pos = g.field("pos").and_then(|v| v.as_int()).unwrap_or(-1);
            if pos <= last {
                return Err(format!("replica {r}: read positions not increasing: {gets:?}"));
            }
            last = pos;
        }
        let this = KvSummary {
            applied,
            gets: gets.len(),
            store,
        };
        match &summary {
            None => summary = Some(this),
            Some(first) => {
                if first.store != this.store {
                    return Err(format!(
                        "stores diverge: replica 0 {:?} vs replica {r} {:?}",
                        first.store, this.store
                    ));
                }
                if streams[0][..streams[0].len() - 1] != stream[..stream.len() - 1] {
                    return Err(format!(
                        "read streams diverge between replica 0 and replica {r}"
                    ));
                }
            }
        }
    }
    summary.ok_or_else(|| "no replicas".to_string())
}

/// Run the oracle over a simulator result.
pub fn check_sim_agreement(opts: &KvOpts, result: &SimResult) -> Result<KvSummary, String> {
    if !result.unresolved.is_empty() {
        return Err(format!("unresolved guesses: {:?}", result.unresolved));
    }
    if result.truncated {
        return Err("run truncated (max_events)".into());
    }
    let streams = replica_streams(
        opts,
        result.external.iter().map(|(_, p, v)| (*p, v.clone())),
    );
    check_replica_agreement(opts, &streams)
}

/// Run the oracle over a real-thread runtime result.
pub fn check_rt_agreement(
    opts: &KvOpts,
    result: &opcsp_rt::RtResult,
) -> Result<KvSummary, String> {
    if result.timed_out {
        return Err("rt run timed out".into());
    }
    if !result.panicked.is_empty() {
        return Err(format!("rt panics: {:?}", result.panics));
    }
    let streams = replica_streams(opts, result.external.iter().cloned());
    check_replica_agreement(opts, &streams)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opcsp_core::SpeculationPolicy;

    #[test]
    fn zipf_cdf_is_monotone_and_commands_deterministic() {
        let cdf = zipf_cdf(16, 0.99);
        assert_eq!(cdf.len(), 16);
        assert!(cdf.windows(2).all(|w| w[0] < w[1]));
        assert!((cdf[15] - 1.0).abs() < 1e-9);
        let a = kv_command(7, &cdf, 500, 2, 5);
        let b = kv_command(7, &cdf, 500, 2, 5);
        assert_eq!(a, b);
        assert!(a.key < 16);
        // The skew is real: rank 0 dominates a uniform share.
        let hits = (0..1000)
            .filter(|&op| kv_command(7, &cdf, 0, 0, op).key == 0)
            .count();
        assert!(hits > 1000 / 16, "rank-0 hits {hits} not skewed");
    }

    #[test]
    fn optimistic_run_commits_and_replicas_agree() {
        let opts = KvOpts::default();
        let r = run_replicated_kv(opts.clone());
        let s = check_sim_agreement(&opts, &r).expect("SMR oracle");
        assert_eq!(s.applied, opts.total_ops() as i64);
        assert!(s.gets > 0, "mix should include reads");
        assert!(!s.store.is_empty(), "mix should include writes");
    }

    #[test]
    fn pessimistic_baseline_never_rolls_back_and_agrees() {
        let opts = KvOpts {
            core: CoreConfig {
                speculation: SpeculationPolicy::Pessimistic,
                ..CoreConfig::default()
            },
            ..KvOpts::default()
        };
        let r = run_replicated_kv(opts.clone());
        check_sim_agreement(&opts, &r).expect("SMR oracle");
        assert_eq!(r.stats().forks, 0, "pessimistic must not fork");
        assert_eq!(r.stats().rollbacks, 0);
    }

    #[test]
    fn spontaneous_order_makes_guesses_right_under_fixed_latency() {
        let opts = KvOpts::default();
        let r = run_replicated_kv(opts.clone());
        let st = r.stats();
        assert!(
            st.aborts * 10 <= st.forks,
            "fixed latency should make the round-robin guess mostly right: {st:?}"
        );
    }

    #[test]
    fn jitter_breaks_spontaneous_order_but_agreement_holds() {
        let opts = KvOpts {
            jitter: 40,
            seed: 3,
            ..KvOpts::default()
        };
        let r = run_replicated_kv(opts.clone());
        check_sim_agreement(&opts, &r).expect("SMR oracle under jitter");
        assert!(
            r.stats().aborts > 0,
            "jitter should misorder some arrivals: {:?}",
            r.stats()
        );
    }

    #[test]
    fn optimism_beats_pessimism_at_fixed_latency() {
        let opts = KvOpts::default();
        let opt = run_replicated_kv(opts.clone());
        let pess = run_replicated_kv(KvOpts {
            core: CoreConfig {
                speculation: SpeculationPolicy::Pessimistic,
                ..CoreConfig::default()
            },
            ..opts.clone()
        });
        let so = check_sim_agreement(&opts, &opt).expect("optimistic oracle");
        let sp = check_sim_agreement(&opts, &pess).expect("pessimistic oracle");
        // Same committed history…
        assert_eq!(so.store, sp.store);
        // …reached faster: streaming the broadcasts hides the sequencer
        // round trip.
        assert!(
            opt.completion < pess.completion,
            "optimistic {} vs pessimistic {}",
            opt.completion,
            pess.completion
        );
    }
}
