//! Fan-in streaming — `P` producers stream `n` calls each into one shared
//! consumer (the `examples/csp/fan_in.csp` shape, scaled).
//!
//! Every reply the consumer sends while speculation is in flight carries
//! the union of all producers' pending guesses, so the same large guard
//! tag is constructed over and over — the guard-interner's hit path under
//! a multi-writer workload, where the streaming and chain workloads only
//! exercise single-writer tag reuse. Reported by `figures interner`.

use crate::servers::{DisplaySink, Server};
use crate::streaming::PutLineClient;
use opcsp_core::{CoreConfig, ProcessId, Value};
use opcsp_sim::{
    Behavior, BehaviorState, Effect, LatencyModel, Resume, SimBuilder, SimConfig, SimResult, VTime,
};

/// Scenario parameters for the fan-in experiments.
#[derive(Debug, Clone)]
pub struct FanInOpts {
    /// Number of producers streaming into the consumer.
    pub producers: u32,
    /// Calls per producer.
    pub n: u32,
    /// One-way network latency (base when jittered).
    pub latency: u64,
    /// Uniform jitter spread (0 = fixed latency).
    pub jitter: u64,
    pub seed: u64,
    pub optimism: bool,
    pub server_compute: u64,
    pub core: CoreConfig,
    pub fork_timeout: VTime,
}

impl Default for FanInOpts {
    fn default() -> Self {
        FanInOpts {
            producers: 4,
            n: 16,
            latency: 50,
            jitter: 0,
            seed: 1,
            optimism: true,
            server_compute: 1,
            core: CoreConfig::default(),
            fork_timeout: 100_000,
        }
    }
}

/// The consumer's process id (producers occupy `0..producers`).
pub fn consumer(opts: &FanInOpts) -> ProcessId {
    ProcessId(opts.producers)
}

/// The engine config [`run_fan_in`] derives from the scenario options —
/// exposed so schedule exploration can vary it (optimism, forced
/// prefixes) while keeping the same world.
pub fn fan_in_config(opts: &FanInOpts) -> SimConfig {
    let latency = if opts.jitter > 0 {
        LatencyModel::jitter(opts.latency, opts.jitter, opts.seed)
    } else {
        LatencyModel::fixed(opts.latency)
    };
    SimConfig {
        core: opts.core.clone(),
        optimism: opts.optimism,
        latency,
        fork_timeout: opts.fork_timeout,
        ..SimConfig::default()
    }
}

/// Build and run the fan-in world under an explicit engine config (the
/// schedule explorer's runner).
pub fn run_fan_in_cfg(opts: &FanInOpts, cfg: &SimConfig) -> SimResult {
    let board = consumer(opts);
    let mut b = SimBuilder::new(cfg.clone());
    for _ in 0..opts.producers {
        b.add_process(PutLineClient::to(opts.n, board));
    }
    let s = b.add_process(
        Server::new("Board", opts.server_compute).with_reply(|_| Value::Bool(true)),
    );
    debug_assert_eq!(s, board);
    b.build().run()
}

/// Build and run the fan-in scenario.
pub fn run_fan_in(opts: FanInOpts) -> SimResult {
    let cfg = fan_in_config(&opts);
    run_fan_in_cfg(&opts, &cfg)
}

// ---------------------------------------------------------------------
// Burst variant: repeated large tags
// ---------------------------------------------------------------------

/// A producer that accumulates `depth` nested pending guesses (one fork
/// per outstanding call) and then streams `burst` one-way sends to the
/// sink under that *unchanged* guard. With `depth > Guard::INLINE_CAP`
/// every message in the burst (and every arrival-classification at the
/// sink) re-interns the same large tag — the guard-interner hit path the
/// streaming workloads cannot reach, since their guards grow monotonically
/// and each tag is constructed exactly once.
pub struct BurstProducer {
    pub depth: u32,
    pub burst: u32,
    pub sink: ProcessId,
}

#[derive(Clone)]
struct BpState {
    forked: u32,
    sent: u32,
    pc: BpPc,
}

#[derive(Clone)]
enum BpPc {
    Top,
    Forked,
    AwaitReturn,
    Joining,
    Bursting,
    Finished,
}

impl BurstProducer {
    fn advance(&self, st: &mut BpState) -> Effect {
        if st.forked < self.depth {
            st.pc = BpPc::Forked;
            Effect::Fork {
                site: 1,
                guesses: vec![("ok".into(), Value::Bool(true))],
            }
        } else if st.sent < self.burst {
            st.pc = BpPc::Bursting;
            st.sent += 1;
            Effect::Send {
                to: self.sink,
                payload: Value::Int(st.sent as i64),
                label: "B".into(),
            }
        } else {
            st.pc = BpPc::Finished;
            Effect::Done
        }
    }
}

impl Behavior for BurstProducer {
    fn init(&self) -> BehaviorState {
        BehaviorState::new(BpState {
            forked: 0,
            sent: 0,
            pc: BpPc::Top,
        })
    }

    fn step(&self, state: &mut BehaviorState, resume: Resume) -> Effect {
        let st = state.get_mut::<BpState>();
        match (&st.pc, resume) {
            (BpPc::Top, Resume::Start) => self.advance(st),
            (BpPc::Forked, Resume::ForkLeft | Resume::ForkDenied) => {
                st.pc = BpPc::AwaitReturn;
                Effect::call(self.sink, Value::Int(st.forked as i64), "C")
            }
            (BpPc::Forked, Resume::ForkRight { .. }) => {
                st.forked += 1;
                self.advance(st)
            }
            (BpPc::AwaitReturn, Resume::Msg(env)) => {
                st.pc = BpPc::Joining;
                Effect::JoinLeft {
                    actual: vec![("ok".into(), Value::Bool(env.payload.is_true()))],
                }
            }
            // Pessimistic (or post-abort) sequential continuation.
            (BpPc::Joining, Resume::JoinSequential) => {
                st.forked += 1;
                self.advance(st)
            }
            (BpPc::Bursting, Resume::Continue) => self.advance(st),
            (_, r) => panic!("BurstProducer: unexpected resume {r:?}"),
        }
    }

    fn name(&self) -> &str {
        "BurstProducer"
    }
}

/// Run the burst fan-in: `producers` burst producers (each `depth` pending
/// guesses, `burst` sends) into one [`DisplaySink`].
pub fn run_fan_in_burst(opts: FanInOpts, depth: u32) -> SimResult {
    let latency = if opts.jitter > 0 {
        LatencyModel::jitter(opts.latency, opts.jitter, opts.seed)
    } else {
        LatencyModel::fixed(opts.latency)
    };
    let cfg = SimConfig {
        core: opts.core.clone(),
        optimism: opts.optimism,
        latency,
        fork_timeout: opts.fork_timeout,
        ..SimConfig::default()
    };
    let sink = consumer(&opts);
    let mut b = SimBuilder::new(cfg);
    for _ in 0..opts.producers {
        b.add_process(BurstProducer {
            depth,
            burst: opts.n,
            sink,
        });
    }
    let s = b.add_process(DisplaySink::new("Board"));
    debug_assert_eq!(s, sink);
    b.build().run()
}

// ---------------------------------------------------------------------
// Wide variant on the real-thread runtime
// ---------------------------------------------------------------------

/// Build the fan-in world on the real-thread runtime, sized by
/// `opts.producers` (up to 100k senders — widths the sharded executor
/// exists for). Every producer shares ONE behavior template, so
/// registration is an `Arc` pointer clone per process and actor state is
/// constructed lazily inside the owning executor thread: a huge world
/// pays no O(N) coordinator-side allocation spike before the run starts.
/// Producers are the clients whose completion ends the run; the consumer
/// is the server.
///
/// Width note: with optimism on, every concurrently-unresolved producer
/// guess lands in the consumer's thread guard, so reply guards grow with
/// the number of producers mid-speculation — an O(width²) wire-byte cost
/// that is a *protocol* property (the guard-interner experiments measure
/// it), not an executor one. Full-width runs that only exercise executor
/// scale should set `optimism: false` in the `RtConfig`.
pub fn rt_fan_in_world(opts: &FanInOpts, cfg: opcsp_rt::RtConfig) -> opcsp_rt::RtWorld {
    use std::sync::Arc;
    assert!(
        opts.producers <= 100_000,
        "rt fan-in is sized for up to 100k senders"
    );
    let board = consumer(opts);
    let mut w = opcsp_rt::RtWorld::new(cfg);
    let template: Arc<dyn Behavior> = Arc::new(PutLineClient::to(opts.n, board));
    for _ in 0..opts.producers {
        w.add_process_arc(template.clone(), true);
    }
    let s = w.add_process(
        Server::new("Board", opts.server_compute).with_reply(|_| Value::Bool(true)),
        false,
    );
    debug_assert_eq!(s, board);
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_in_completes_and_commits_everything() {
        let r = run_fan_in(FanInOpts::default());
        assert!(!r.truncated);
        assert!(r.unresolved.is_empty(), "unresolved: {:?}", r.unresolved);
        // Every producer's full stream is received by the consumer.
        let opts = FanInOpts::default();
        let recvd = r.logs[&consumer(&opts)]
            .iter()
            .filter(|o| matches!(o, opcsp_sim::Observable::Received { .. }))
            .count();
        assert_eq!(recvd as u32, opts.producers * opts.n);
    }

    #[test]
    fn burst_fan_in_completes() {
        let r = run_fan_in_burst(FanInOpts::default(), 6);
        assert!(!r.truncated);
        assert!(r.unresolved.is_empty(), "unresolved: {:?}", r.unresolved);
    }

    #[test]
    fn burst_fan_in_exercises_the_interner_hit_path() {
        let r = run_fan_in_burst(
            FanInOpts {
                producers: 2,
                n: 24,
                ..FanInOpts::default()
            },
            6,
        );
        let s = r.stats().interner;
        assert!(s.hits > 0, "no interner hits: {s:?}");
        assert!(
            s.hits > s.misses,
            "repeated large tags should be hit-dominated: {s:?}"
        );
    }
}
