//! Two independent clients sharing one server — the §5 comparison
//! workload (experiment E6).
//!
//! Under the paper's protocol, each client streams its calls and the
//! server services them in arrival order; the clients are causally
//! unrelated, so no ordering constraint ever links them, and wall-clock
//! skew on one client's link cannot invalidate the other's work. The same
//! workload under Time Warp (see `opcsp_timewarp::workloads`) must pick a
//! global total order up front, and the skewed client's stragglers roll
//! back the other client's already-processed requests.

use crate::servers::Server;
use crate::streaming::PutLineClient;
use opcsp_core::{ProcessId, Value};
use opcsp_sim::{LatencyModel, SimBuilder, SimConfig, SimResult};

pub const CLIENT_A: ProcessId = ProcessId(0);
pub const CLIENT_B: ProcessId = ProcessId(1);
pub const SERVER: ProcessId = ProcessId(2);

/// Parameters matching `opcsp_timewarp::TwoClientOpts`.
#[derive(Debug, Clone)]
pub struct ContentionOpts {
    pub n_per_client: u32,
    pub latency: u64,
    /// Extra latency on client A's link to the server.
    pub skew: u64,
    pub optimism: bool,
}

impl Default for ContentionOpts {
    fn default() -> Self {
        ContentionOpts {
            n_per_client: 8,
            latency: 20,
            skew: 0,
            optimism: true,
        }
    }
}

/// Run the two-client contention workload under the OPCSP protocol.
pub fn run_contention(opts: ContentionOpts) -> SimResult {
    let mut latency = LatencyModel::per_link(opts.latency);
    if opts.skew > 0 {
        latency = latency.link(CLIENT_A, SERVER, opts.latency + opts.skew);
    }
    let cfg = SimConfig {
        optimism: opts.optimism,
        latency: latency.build(),
        ..SimConfig::default()
    };
    let mut b = SimBuilder::new(cfg);
    let a = b.add_process(PutLineClient::to(opts.n_per_client, SERVER));
    let bb = b.add_process(PutLineClient::to(opts.n_per_client, SERVER));
    let s = b.add_process(Server::new("Shared", 1).with_reply(|_| Value::Bool(true)));
    debug_assert_eq!((a, bb, s), (CLIENT_A, CLIENT_B, SERVER));
    b.build().run()
}

/// Requests the server committed, in service order.
pub fn server_requests(result: &SimResult) -> Vec<(ProcessId, Value)> {
    result
        .logs
        .get(&SERVER)
        .map(|log| {
            log.iter()
                .filter_map(|o| match o {
                    opcsp_sim::Observable::Received { from, payload, .. } => {
                        Some((*from, payload.clone()))
                    }
                    _ => None,
                })
                .collect()
        })
        .unwrap_or_default()
}
