//! Call streaming — the paper's flagship application (§1): a client makes
//! `N` successive `PutLine` calls to a window-manager server. Sequentially,
//! each call waits a full round trip; with the optimistic transformation
//! each call's continuation runs under the guess that the call returns
//! successfully, converting the series of two-way calls into a stream of
//! one-way sends.
//!
//! Failure injection: the server rejects a chosen set of line numbers; a
//! rejected line is a *value fault* at the client's join — the speculative
//! tail of the stream rolls back. Used by experiments E1 (latency sweep),
//! E2 (N sweep), E3 (abort-probability sweep) and E8 (guard growth).

use crate::servers::Server;
use opcsp_core::{CoreConfig, ProcessId, Value};
use opcsp_sim::{
    Behavior, BehaviorState, Effect, LatencyModel, Resume, SimBuilder, SimConfig, SimResult, VTime,
};
use std::collections::BTreeSet;
use std::sync::Arc;

pub const CLIENT: ProcessId = ProcessId(0);
pub const SERVER: ProcessId = ProcessId(1);

/// The streaming client: `for i in 0..n { ok = PutLine(i); if !ok break }`.
pub struct PutLineClient {
    pub n: u32,
    /// The server to call (defaults to process 1).
    pub server: ProcessId,
}

impl PutLineClient {
    pub fn new(n: u32) -> Self {
        PutLineClient { n, server: SERVER }
    }

    pub fn to(n: u32, server: ProcessId) -> Self {
        PutLineClient { n, server }
    }
}

#[derive(Clone)]
struct ClState {
    i: u32,
    n: u32,
    ok: bool,
    pc: ClPc,
}

#[derive(Clone)]
enum ClPc {
    Top,
    Forked,
    Await,
    Joining,
    Finished,
}

fn loop_top(st: &mut ClState) -> Effect {
    if st.i < st.n {
        st.pc = ClPc::Forked;
        Effect::Fork {
            site: 1,
            guesses: vec![("ok".into(), Value::Bool(true))],
        }
    } else {
        st.pc = ClPc::Finished;
        Effect::Done
    }
}

impl Behavior for PutLineClient {
    fn init(&self) -> BehaviorState {
        BehaviorState::new(ClState {
            i: 0,
            n: self.n,
            ok: true,
            pc: ClPc::Top,
        })
    }

    fn step(&self, state: &mut BehaviorState, resume: Resume) -> Effect {
        let st = state.get_mut::<ClState>();
        match (&st.pc, resume) {
            (ClPc::Top, Resume::Start) => loop_top(st),
            // S1 of iteration i: the PutLine call.
            (ClPc::Forked, Resume::ForkLeft | Resume::ForkDenied) => {
                st.pc = ClPc::Await;
                Effect::call(
                    self.server,
                    Value::Int(st.i as i64),
                    format!("C{}", st.i + 1),
                )
            }
            // S2 (speculative): assume success, move to the next line.
            (ClPc::Forked, Resume::ForkRight { guesses }) => {
                st.ok = guesses
                    .iter()
                    .find(|(k, _)| k == "ok")
                    .map(|(_, v)| v.is_true())
                    .unwrap_or(false);
                st.i += 1;
                loop_top(st)
            }
            (ClPc::Await, Resume::Msg(env)) => {
                st.ok = env.payload.is_true();
                st.pc = ClPc::Joining;
                Effect::JoinLeft {
                    actual: vec![("ok".into(), Value::Bool(st.ok))],
                }
            }
            // Sequential continuation (pessimistic, or after an abort).
            (ClPc::Joining, Resume::JoinSequential) => {
                if st.ok {
                    st.i += 1;
                    loop_top(st)
                } else {
                    st.pc = ClPc::Finished;
                    Effect::Done
                }
            }
            (_, r) => panic!("PutLineClient: unexpected resume {r:?}"),
        }
    }

    fn name(&self) -> &str {
        "PutLineClient"
    }
}

/// Scenario parameters for the streaming experiments.
#[derive(Debug, Clone)]
pub struct StreamingOpts {
    /// Number of PutLine calls.
    pub n: u32,
    /// One-way network latency.
    pub latency: u64,
    /// Line numbers the server rejects (value faults at the client).
    pub fail_lines: BTreeSet<u32>,
    pub optimism: bool,
    pub server_compute: u64,
    pub core: CoreConfig,
    pub fork_timeout: VTime,
    /// Snapshot every K-th interval boundary (1 = every boundary; larger
    /// = sparse checkpoints restored by replay, §3.1).
    pub checkpoint_every: u32,
    /// Use §4.2.1's fork-after-send client.
    pub fork_after_send: bool,
}

impl Default for StreamingOpts {
    fn default() -> Self {
        StreamingOpts {
            n: 16,
            latency: 50,
            fail_lines: BTreeSet::new(),
            optimism: true,
            server_compute: 1,
            core: CoreConfig::default(),
            fork_timeout: 100_000,
            checkpoint_every: 1,
            fork_after_send: false,
        }
    }
}

/// The engine config [`run_streaming`] derives from the scenario options —
/// exposed so schedule exploration can vary it while keeping the world.
pub fn streaming_config(opts: &StreamingOpts) -> SimConfig {
    SimConfig {
        core: opts.core.clone(),
        optimism: opts.optimism,
        latency: LatencyModel::fixed(opts.latency),
        fork_timeout: opts.fork_timeout,
        checkpoint_every: opts.checkpoint_every,
        ..SimConfig::default()
    }
}

/// Build and run the PutLine world under an explicit engine config (the
/// schedule explorer's runner).
pub fn run_streaming_cfg(opts: &StreamingOpts, cfg: &SimConfig) -> SimResult {
    let mut b = SimBuilder::new(cfg.clone());
    let c = if opts.fork_after_send {
        b.add_process(PutLineClientFas {
            n: opts.n,
            server: SERVER,
        })
    } else {
        b.add_process(PutLineClient::new(opts.n))
    };
    let fails = Arc::new(opts.fail_lines.clone());
    let s = b.add_process(
        Server::new("WindowManager", opts.server_compute).with_reply(move |line| {
            let i = line.as_int().unwrap_or(-1);
            Value::Bool(i >= 0 && !fails.contains(&(i as u32)))
        }),
    );
    debug_assert_eq!((c, s), (CLIENT, SERVER));
    b.build().run()
}

/// Build and run the PutLine scenario.
pub fn run_streaming(opts: StreamingOpts) -> SimResult {
    let cfg = streaming_config(&opts);
    run_streaming_cfg(&opts, &cfg)
}

/// The streaming client using §4.2.1's fork-after-send optimization: the
/// call departs *before* the fork, and the left thread is parked directly
/// on the return — one less engine step and one less resume per line.
pub struct PutLineClientFas {
    pub n: u32,
    pub server: ProcessId,
}

#[derive(Clone)]
struct FasState {
    i: u32,
    n: u32,
    ok: bool,
    pc: ClPc,
}

impl Behavior for PutLineClientFas {
    fn init(&self) -> BehaviorState {
        BehaviorState::new(FasState {
            i: 0,
            n: self.n,
            ok: true,
            pc: ClPc::Top,
        })
    }

    fn step(&self, state: &mut BehaviorState, resume: Resume) -> Effect {
        let st = state.get_mut::<FasState>();
        fn top(this: &PutLineClientFas, st: &mut FasState) -> Effect {
            if st.i < st.n {
                st.pc = ClPc::Await;
                Effect::CallThenFork {
                    to: this.server,
                    payload: Value::Int(st.i as i64),
                    label: format!("C{}", st.i + 1),
                    site: 1,
                    guesses: vec![("ok".into(), Value::Bool(true))],
                }
            } else {
                st.pc = ClPc::Finished;
                Effect::Done
            }
        }
        match (&st.pc, resume) {
            (ClPc::Top, Resume::Start) => top(self, st),
            // Right thread: continue under the guess.
            (ClPc::Await, Resume::ForkRight { guesses }) => {
                st.ok = guesses
                    .iter()
                    .find(|(k, _)| k == "ok")
                    .map(|(_, v)| v.is_true())
                    .unwrap_or(false);
                st.i += 1;
                top(self, st)
            }
            // Left thread (or pessimistic): the return arrives directly.
            (ClPc::Await, Resume::Msg(env)) => {
                st.ok = env.payload.is_true();
                st.pc = ClPc::Joining;
                Effect::JoinLeft {
                    actual: vec![("ok".into(), Value::Bool(st.ok))],
                }
            }
            (ClPc::Joining, Resume::JoinSequential) => {
                if st.ok {
                    st.i += 1;
                    top(self, st)
                } else {
                    st.pc = ClPc::Finished;
                    Effect::Done
                }
            }
            (_, r) => panic!("PutLineClientFas: unexpected resume {r:?}"),
        }
    }

    fn name(&self) -> &str {
        "PutLineClientFas"
    }
}

/// A client that pushes all `n` lines regardless of failures: S2 *reads*
/// the result (so a wrong guess is a genuine value fault with a rollback)
/// but continues either way, tallying successes and failures. Used by the
/// abort-probability sweep (E3), where the paper's trade-off lives:
/// "provided we usually guess right, we still obtain a performance
/// improvement" (§1) — and past a fault-rate threshold, we don't.
pub struct TallyClient {
    pub n: u32,
    pub server: ProcessId,
}

#[derive(Clone)]
struct TallyState {
    i: u32,
    n: u32,
    ok: bool,
    good: i64,
    bad: i64,
    pc: ClPc,
}

impl Behavior for TallyClient {
    fn init(&self) -> BehaviorState {
        BehaviorState::new(TallyState {
            i: 0,
            n: self.n,
            ok: true,
            good: 0,
            bad: 0,
            pc: ClPc::Top,
        })
    }

    fn step(&self, state: &mut BehaviorState, resume: Resume) -> Effect {
        let st = state.get_mut::<TallyState>();
        fn top(st: &mut TallyState) -> Effect {
            if st.i < st.n {
                st.pc = ClPc::Forked;
                Effect::Fork {
                    site: 1,
                    guesses: vec![("ok".into(), Value::Bool(true))],
                }
            } else {
                st.pc = ClPc::Finished;
                Effect::Done
            }
        }
        fn s2(st: &mut TallyState) -> Effect {
            // S2 reads the guessed/actual result.
            if st.ok {
                st.good += 1;
            } else {
                st.bad += 1;
            }
            st.i += 1;
            top(st)
        }
        match (&st.pc, resume) {
            (ClPc::Top, Resume::Start) => top(st),
            (ClPc::Forked, Resume::ForkLeft | Resume::ForkDenied) => {
                st.pc = ClPc::Await;
                Effect::call(
                    self.server,
                    Value::Int(st.i as i64),
                    format!("C{}", st.i + 1),
                )
            }
            (ClPc::Forked, Resume::ForkRight { guesses }) => {
                st.ok = guesses
                    .iter()
                    .find(|(k, _)| k == "ok")
                    .map(|(_, v)| v.is_true())
                    .unwrap_or(false);
                s2(st)
            }
            (ClPc::Await, Resume::Msg(env)) => {
                st.ok = env.payload.is_true();
                st.pc = ClPc::Joining;
                Effect::JoinLeft {
                    actual: vec![("ok".into(), Value::Bool(st.ok))],
                }
            }
            (ClPc::Joining, Resume::JoinSequential) => s2(st),
            (_, r) => panic!("TallyClient: unexpected resume {r:?}"),
        }
    }

    fn name(&self) -> &str {
        "TallyClient"
    }
}

/// Deterministic per-line failure decision with rate `p` (per mille) under
/// `seed` — a tiny splitmix-style hash so runs are reproducible.
pub fn line_fails(seed: u64, line: u32, p_per_mille: u32) -> bool {
    let mut x = seed ^ ((line as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % 1000) < p_per_mille as u64
}

/// E3 scenario: all `n` lines pushed; each independently fails with
/// probability `p_per_mille`/1000.
#[derive(Debug, Clone)]
pub struct TallyOpts {
    pub n: u32,
    pub latency: u64,
    pub p_per_mille: u32,
    pub seed: u64,
    pub optimism: bool,
    pub core: CoreConfig,
}

impl Default for TallyOpts {
    fn default() -> Self {
        TallyOpts {
            n: 16,
            latency: 50,
            p_per_mille: 0,
            seed: 1,
            optimism: true,
            core: CoreConfig::default(),
        }
    }
}

/// Run the tally (continue-on-failure) streaming scenario.
pub fn run_tally(opts: TallyOpts) -> SimResult {
    let cfg = SimConfig {
        core: opts.core.clone(),
        optimism: opts.optimism,
        latency: LatencyModel::fixed(opts.latency),
        ..SimConfig::default()
    };
    let mut b = SimBuilder::new(cfg);
    let c = b.add_process(TallyClient {
        n: opts.n,
        server: SERVER,
    });
    let (p, seed) = (opts.p_per_mille, opts.seed);
    let s = b.add_process(Server::new("WindowManager", 1).with_reply(move |line| {
        let i = line.as_int().unwrap_or(-1) as u32;
        Value::Bool(!line_fails(seed, i, p))
    }));
    debug_assert_eq!((c, s), (CLIENT, SERVER));
    b.build().run()
}

/// Build `pairs` independent client→server pairs on the real-thread
/// runtime: client `2k` streams `n` calls to server `2k+1` and no link
/// ever crosses a pair. The executor-scaling workload — with a shared
/// consumer (fan-in) one actor serializes the run, whereas independent
/// pairs let committed-calls/sec grow with the worker count until the
/// pool, not the protocol, is the bottleneck. Behaviors are shared
/// `Arc` templates per role, so a 4096-process world registers without
/// an O(N) construction spike (see `fan_in::rt_fan_in_world`).
pub fn rt_pairs_world(pairs: u32, n: u32, cfg: opcsp_rt::RtConfig) -> opcsp_rt::RtWorld {
    let mut w = opcsp_rt::RtWorld::new(cfg);
    let server: Arc<dyn Behavior> =
        Arc::new(Server::new("S", 0).with_reply(|_| Value::Bool(true)));
    for k in 0..pairs {
        let c = w.add_process(PutLineClient::to(n, ProcessId(2 * k + 1)), true);
        let s = w.add_process_arc(server.clone(), false);
        debug_assert_eq!((c, s), (ProcessId(2 * k), ProcessId(2 * k + 1)));
    }
    w
}

/// Number of lines the client successfully delivered, per the committed
/// external record — here, the count of successful calls in the client log.
pub fn delivered_lines(result: &SimResult) -> usize {
    result
        .logs
        .get(&CLIENT)
        .map(|log| {
            log.iter()
                .filter(|o| {
                    matches!(o, opcsp_sim::Observable::Received { payload, .. } if payload.is_true())
                })
                .count()
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_fails_is_deterministic_and_rate_bounded() {
        for p in [0u32, 250, 500, 1000] {
            let hits = (0..1000).filter(|&i| line_fails(7, i, p)).count();
            let again = (0..1000).filter(|&i| line_fails(7, i, p)).count();
            assert_eq!(hits, again, "determinism at p={p}");
            match p {
                0 => assert_eq!(hits, 0),
                1000 => assert_eq!(hits, 1000),
                _ => {
                    let expect = p as usize;
                    assert!(hits.abs_diff(expect) < expect / 2, "p={p}: got {hits}/1000");
                }
            }
        }
    }

    #[test]
    fn different_seeds_fail_different_lines() {
        let a: Vec<u32> = (0..64).filter(|&i| line_fails(1, i, 300)).collect();
        let b: Vec<u32> = (0..64).filter(|&i| line_fails(2, i, 300)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn delivered_lines_counts_only_successes() {
        let r = run_streaming(StreamingOpts {
            n: 6,
            fail_lines: std::collections::BTreeSet::from([2]),
            ..StreamingOpts::default()
        });
        assert_eq!(delivered_lines(&r), 2);
    }

    #[test]
    fn tally_counts_good_and_bad() {
        let r = run_tally(TallyOpts {
            n: 10,
            p_per_mille: 0,
            ..TallyOpts::default()
        });
        assert!(r.unresolved.is_empty());
        assert_eq!(r.stats().aborts, 0);
        let all_fail = run_tally(TallyOpts {
            n: 10,
            p_per_mille: 1000,
            ..TallyOpts::default()
        });
        assert!(all_fail.unresolved.is_empty());
        assert!(all_fail.stats().value_faults >= 1);
    }
}
