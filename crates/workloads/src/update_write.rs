//! The paper's running example (Figures 1–5): client X performs
//!
//! ```text
//! /* S1 */ OK = Update(Item, Value);   — a call to database server Y,
//!                                        which writes through to the
//!                                        filesystem server Z
//! /* S2 */ if OK { Write(File, ...) }  — a direct call to Z
//! ```
//!
//! The optimistic transformation forks at the S1/S2 boundary guessing
//! `OK = true`. Depending on latencies and on whether Update succeeds, the
//! execution reproduces Figure 2 (pessimistic), Figure 3 (successful
//! streaming), Figure 4 (time fault: X's call reaches Z before Y's), or
//! Figure 5 (value fault and sequential re-execution).

use crate::servers::{ForwardServer, Server};
use opcsp_core::{CoreConfig, ProcessId, Value};
use opcsp_sim::{
    Behavior, BehaviorState, Effect, LatencyModel, Resume, SimBuilder, SimConfig, SimResult,
};

pub const X: ProcessId = ProcessId(0);
pub const Y: ProcessId = ProcessId(1);
pub const Z: ProcessId = ProcessId(2);

/// The client process X of Figure 1.
pub struct UpdateWriteClient;

#[derive(Clone)]
enum Pc {
    Init,
    Forked,
    AwaitR1,
    Joining,
    AwaitR3,
    Finished,
}

#[derive(Clone)]
struct XState {
    pc: Pc,
    ok: bool,
}

impl UpdateWriteClient {
    fn s2(&self, st: &mut XState) -> Effect {
        if st.ok {
            st.pc = Pc::AwaitR3;
            Effect::call(Z, Value::str("file-data"), "C3")
        } else {
            st.pc = Pc::Finished;
            Effect::Done
        }
    }
}

impl Behavior for UpdateWriteClient {
    fn init(&self) -> BehaviorState {
        BehaviorState::new(XState {
            pc: Pc::Init,
            ok: false,
        })
    }

    fn step(&self, state: &mut BehaviorState, resume: Resume) -> Effect {
        let st = state.get_mut::<XState>();
        match (&st.pc, resume) {
            (Pc::Init, Resume::Start) => {
                st.pc = Pc::Forked;
                Effect::Fork {
                    site: 1,
                    guesses: vec![("ok".into(), Value::Bool(true))],
                }
            }
            // Left thread (or pessimistic inline): execute S1 — the Update
            // call to the database server Y.
            (Pc::Forked, Resume::ForkLeft | Resume::ForkDenied) => {
                st.pc = Pc::AwaitR1;
                Effect::call(
                    Y,
                    Value::record([
                        ("item".to_string(), Value::Int(7)),
                        ("value".to_string(), Value::Int(42)),
                    ]),
                    "C1",
                )
            }
            // Right thread: adopt the guess and run S2.
            (Pc::Forked, Resume::ForkRight { guesses }) => {
                st.ok = guesses
                    .iter()
                    .find(|(k, _)| k == "ok")
                    .map(|(_, v)| v.is_true())
                    .unwrap_or(false);
                self.s2(st)
            }
            (Pc::AwaitR1, Resume::Msg(env)) => {
                st.ok = env.payload.is_true();
                st.pc = Pc::Joining;
                Effect::JoinLeft {
                    actual: vec![("ok".into(), Value::Bool(st.ok))],
                }
            }
            (Pc::Joining, Resume::JoinSequential) => self.s2(st),
            (Pc::AwaitR3, Resume::Msg(_)) => {
                st.pc = Pc::Finished;
                Effect::Done
            }
            (_, r) => panic!("X: unexpected resume {r:?}"),
        }
    }

    fn name(&self) -> &str {
        "X(update-write)"
    }
}

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct UpdateWriteOpts {
    /// Does the Update succeed? `false` reproduces the Figure 5 value
    /// fault.
    pub update_succeeds: bool,
    /// Latency model. Symmetric latencies make X's speculative C3 reach Z
    /// before Y's C2 — Figure 4's time fault. To get Figure 3, slow the
    /// X→Z link (see [`fig3_latency`]).
    pub latency: LatencyModel,
    /// Run optimistically (Figures 3–5) or pessimistically (Figure 2).
    pub optimism: bool,
    pub server_compute: u64,
    pub core: CoreConfig,
}

impl Default for UpdateWriteOpts {
    fn default() -> Self {
        UpdateWriteOpts {
            update_succeeds: true,
            latency: fig3_latency(10),
            optimism: true,
            server_compute: 1,
            core: CoreConfig::default(),
        }
    }
}

/// Latency that produces the *successful* Figure 3 ordering: the direct
/// X→Z link is slow enough that Z sees C2 (via Y) before C3.
pub fn fig3_latency(d: u64) -> LatencyModel {
    LatencyModel::per_link(d).link(X, Z, 3 * d).build()
}

/// Symmetric latency: X's speculative C3 wins the race to Z — Figure 4.
pub fn fig4_latency(d: u64) -> LatencyModel {
    LatencyModel::fixed(d)
}

/// Build and run the scenario.
pub fn run_update_write(opts: UpdateWriteOpts) -> SimResult {
    let cfg = SimConfig {
        core: opts.core.clone(),
        optimism: opts.optimism,
        latency: opts.latency.clone(),
        ..SimConfig::default()
    };
    let mut b = SimBuilder::new(cfg);
    let x = b.add_process(UpdateWriteClient);
    let succeeds = opts.update_succeeds;
    let y = b.add_process(
        ForwardServer::new("Y(db)", Z, "C2")
            .with_compute(opts.server_compute)
            .with_reply(move |down| {
                if succeeds {
                    down.clone()
                } else {
                    Value::Bool(false)
                }
            }),
    );
    let z = b.add_process(Server::new("Z(fs)", opts.server_compute));
    debug_assert_eq!((x, y, z), (X, Y, Z));
    b.build().run()
}
