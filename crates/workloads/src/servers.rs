//! Reusable server behaviors: a compute-and-reply server and a forwarding
//! server (the paper's database server Y, which services Update by calling
//! the filesystem server Z).

use opcsp_core::{DataKind, ProcessId, Value};
use opcsp_sim::{Behavior, BehaviorState, Effect, Resume};
use std::sync::Arc;

pub use opcsp_sim::reply_label;

type ReplyFn = Arc<dyn Fn(&Value) -> Value + Send + Sync>;

/// A server that loops: receive → compute → reply. One-way sends are
/// absorbed (consumed without a reply).
pub struct Server {
    name: String,
    compute: u64,
    reply: ReplyFn,
}

impl Server {
    pub fn new(name: impl Into<String>, compute: u64) -> Self {
        Server {
            name: name.into(),
            compute,
            reply: Arc::new(|_| Value::Bool(true)),
        }
    }

    /// Override the reply function (default: `Bool(true)`).
    pub fn with_reply(mut self, f: impl Fn(&Value) -> Value + Send + Sync + 'static) -> Self {
        self.reply = Arc::new(f);
        self
    }
}

#[derive(Clone)]
enum ServerPc {
    Idle,
    Respond { payload: Value, label: String },
}

impl Behavior for Server {
    fn init(&self) -> BehaviorState {
        BehaviorState::new(ServerPc::Idle)
    }

    fn step(&self, state: &mut BehaviorState, resume: Resume) -> Effect {
        let pc = state.get_mut::<ServerPc>();
        match (pc.clone(), resume) {
            (ServerPc::Idle, Resume::Start | Resume::Continue) => Effect::Receive,
            (ServerPc::Idle, Resume::Msg(env)) => match env.kind {
                DataKind::Call(_) => {
                    *pc = ServerPc::Respond {
                        payload: env.payload.clone(),
                        label: reply_label(&env.label),
                    };
                    Effect::Compute { cost: self.compute }
                }
                // Absorb one-way sends.
                _ => Effect::Receive,
            },
            (ServerPc::Respond { payload, label }, Resume::Continue) => {
                *pc = ServerPc::Idle;
                Effect::reply((self.reply)(&payload), label)
            }
            (_, r) => panic!("{}: unexpected resume {r:?}", self.name),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A server that services each call by calling a downstream server first —
/// the paper's process Y: `Update` writes the data "by calling process Z,
/// the network filesystem server" (§2).
pub struct ForwardServer {
    name: String,
    downstream: ProcessId,
    forward_label: String,
    compute: u64,
    /// Reply derived from the downstream return value.
    reply: ReplyFn,
}

impl ForwardServer {
    pub fn new(
        name: impl Into<String>,
        downstream: ProcessId,
        forward_label: impl Into<String>,
    ) -> Self {
        ForwardServer {
            name: name.into(),
            downstream,
            forward_label: forward_label.into(),
            compute: 1,
            reply: Arc::new(|down: &Value| down.clone()),
        }
    }

    pub fn with_compute(mut self, c: u64) -> Self {
        self.compute = c;
        self
    }

    /// Override how the reply is derived from the downstream return —
    /// e.g. `|_| Value::Bool(false)` models the failed Update of Figure 5.
    pub fn with_reply(mut self, f: impl Fn(&Value) -> Value + Send + Sync + 'static) -> Self {
        self.reply = Arc::new(f);
        self
    }
}

#[derive(Clone)]
enum FwdPc {
    Idle,
    Forward { payload: Value, reply_label: String },
    AwaitDownstream { reply_label: String },
}

impl Behavior for ForwardServer {
    fn init(&self) -> BehaviorState {
        BehaviorState::new(FwdPc::Idle)
    }

    fn step(&self, state: &mut BehaviorState, resume: Resume) -> Effect {
        let pc = state.get_mut::<FwdPc>();
        match (pc.clone(), resume) {
            (FwdPc::Idle, Resume::Start | Resume::Continue) => Effect::Receive,
            (FwdPc::Idle, Resume::Msg(env)) => match env.kind {
                DataKind::Call(_) => {
                    *pc = FwdPc::Forward {
                        payload: env.payload.clone(),
                        reply_label: reply_label(&env.label),
                    };
                    Effect::Compute { cost: self.compute }
                }
                _ => Effect::Receive,
            },
            (
                FwdPc::Forward {
                    payload,
                    reply_label,
                },
                Resume::Continue,
            ) => {
                *pc = FwdPc::AwaitDownstream { reply_label };
                Effect::call(self.downstream, payload, self.forward_label.clone())
            }
            (FwdPc::AwaitDownstream { reply_label }, Resume::Msg(ret)) => {
                *pc = FwdPc::Idle;
                Effect::reply((self.reply)(&ret.payload), reply_label)
            }
            (_, r) => panic!("{}: unexpected resume {r:?}", self.name),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A sink that absorbs one-way sends and emits each payload as an external
/// output (workstation display / printer, §3.2); replies `true` to calls.
pub struct DisplaySink {
    name: String,
}

impl DisplaySink {
    pub fn new(name: impl Into<String>) -> Self {
        DisplaySink { name: name.into() }
    }
}

#[derive(Clone)]
enum SinkPc {
    Idle,
    Emit { reply: Option<String> },
}

impl Behavior for DisplaySink {
    fn init(&self) -> BehaviorState {
        BehaviorState::new(SinkPc::Idle)
    }

    fn step(&self, state: &mut BehaviorState, resume: Resume) -> Effect {
        let pc = state.get_mut::<SinkPc>();
        match (pc.clone(), resume) {
            (SinkPc::Idle, Resume::Start | Resume::Continue) => Effect::Receive,
            (SinkPc::Idle, Resume::Msg(env)) => {
                let reply = match env.kind {
                    DataKind::Call(_) => Some(reply_label(&env.label)),
                    _ => None,
                };
                *pc = SinkPc::Emit { reply };
                Effect::External {
                    payload: env.payload,
                }
            }
            (SinkPc::Emit { reply, .. }, Resume::Continue) => {
                *pc = SinkPc::Idle;
                match reply {
                    Some(label) => Effect::reply(Value::Bool(true), label),
                    None => Effect::Receive,
                }
            }
            (_, r) => panic!("{}: unexpected resume {r:?}", self.name),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_labels_mirror_call_labels() {
        assert_eq!(reply_label("C1"), "R1");
        assert_eq!(reply_label("C12"), "R12");
        assert_eq!(reply_label("M1"), "R:M1");
    }
}
