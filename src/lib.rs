//! # opcsp — Optimistic Parallelization of Communicating Sequential Processes
//!
//! Umbrella crate re-exporting the whole workspace: a Rust reproduction of
//! Bacon & Strom, *Optimistic Parallelization of Communicating Sequential
//! Processes* (PPoPP 1991). See the README for a guided tour and
//! DESIGN.md for the system inventory.

pub use opcsp_core as core;
pub use opcsp_lang as lang;
pub use opcsp_rt as rt;
pub use opcsp_sim as sim;
pub use opcsp_timewarp as timewarp;
pub use opcsp_workloads as workloads;
